//! Resilient super-message routing (Theorem 4.1 / Theorem 1.1).
//!
//! An instance consists of super-messages, each identified by `(src, slot)`
//! with a payload of at most `payload_bits` bits and a target list known to
//! all nodes. Two execution engines implement the same contract:
//!
//! * [`mod@unit`] — the *scheduled unit-instance* engine: messages are greedily
//!   colored into stages so that each stage has per-node source- and
//!   target-multiplicity 1, and every stage scatters one Reed–Solomon
//!   codeword symbol per relay node. Maximal decode margin
//!   (`2·⌊αn⌋` errors against a radius of `(L-k)/2`), round cost
//!   `O(stages · chunks)`.
//! * [`coverfree`] — the paper's Section 4.2 engine: all `k` messages per
//!   node route *simultaneously* through a `(k-1, δ)`-cover-free family of
//!   receiver sets with the `InLoad`/`OutLoad` = 1 filters; overlap
//!   positions become *known erasures* (our erasure-aware refinement of
//!   Lemma 4.6). Round cost `O(chunks)` — constant in `k` — at the price of
//!   a tighter decode margin.
//!
//! [`route`] picks the engine per [`RouterConfig::mode`]; `Auto` uses the
//! cover-free engine whenever its margin validates and falls back to unit
//! scheduling otherwise, which mirrors how the paper trades the two (its
//! constants make the cover-free margin positive only asymptotically; see
//! `DESIGN.md`, substitution 4).

pub mod coverfree;
pub mod unit;

use crate::error::CoreError;
use bdclique_bits::BitVec;
use bdclique_codes::{BitCode, ReedSolomon, SymbolCode};
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc, SnapError};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// One super-message: `slot` disambiguates multiple messages from the same
/// source (the paper's index `j`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperMessage {
    /// Source node.
    pub src: usize,
    /// Source-local slot `j`.
    pub slot: usize,
    /// Payload (at most the instance's `payload_bits`).
    pub payload: BitVec,
    /// Target nodes (may include `src`; duplicates ignored).
    pub targets: Vec<usize>,
}

/// A routing instance: the global knowledge shared by all nodes (message
/// identities, payload sizes, and target lists — but of course not payload
/// *contents*, which only sources hold).
#[derive(Debug, Clone)]
pub struct RoutingInstance {
    /// Clique size.
    pub n: usize,
    /// Upper bound λ on payload bits (all payloads padded to this on the
    /// wire).
    pub payload_bits: usize,
    /// The super-messages.
    pub messages: Vec<SuperMessage>,
}

impl RoutingInstance {
    /// Validates shape invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] with a diagnosis.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut seen = std::collections::HashSet::new();
        for m in &self.messages {
            if m.src >= self.n {
                return Err(CoreError::invalid(format!("src {} out of range", m.src)));
            }
            if m.payload.len() > self.payload_bits {
                return Err(CoreError::invalid(format!(
                    "payload of ({}, {}) has {} bits > λ = {}",
                    m.src,
                    m.slot,
                    m.payload.len(),
                    self.payload_bits
                )));
            }
            if m.targets.is_empty() {
                return Err(CoreError::invalid(format!(
                    "message ({}, {}) has no targets",
                    m.src, m.slot
                )));
            }
            if m.targets.iter().any(|&t| t >= self.n) {
                return Err(CoreError::invalid("target out of range".to_string()));
            }
            if !seen.insert((m.src, m.slot)) {
                return Err(CoreError::invalid(format!(
                    "duplicate message id ({}, {})",
                    m.src, m.slot
                )));
            }
        }
        Ok(())
    }

    /// Maximum number of messages per source node.
    pub fn max_source_multiplicity(&self) -> usize {
        let mut counts = vec![0usize; self.n];
        for m in &self.messages {
            counts[m.src] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Serializes the instance for checkpointing. Protocol sessions whose
    /// in-flight waves are built from *received* data (not re-derivable
    /// from the problem instance) store the whole wave this way.
    pub(crate) fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.n);
        enc.put_usize(self.payload_bits);
        enc.put_seq(&self.messages, |e, m| {
            e.put_usize(m.src);
            e.put_usize(m.slot);
            e.put_bits(&m.payload);
            e.put_seq(&m.targets, |e, &t| e.put_usize(t));
        });
    }

    /// Decodes an instance written by [`RoutingInstance::snapshot`].
    pub(crate) fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.get_usize()?;
        let payload_bits = dec.get_usize()?;
        let messages = dec.get_seq(25, |d| {
            let src = d.get_usize()?;
            let slot = d.get_usize()?;
            let payload = d.get_bits()?;
            let targets = d.get_seq(8, Dec::get_usize)?;
            Ok(SuperMessage {
                src,
                slot,
                payload,
                targets,
            })
        })?;
        Ok(Self {
            n,
            payload_bits,
            messages,
        })
    }

    /// Maximum number of messages targeting any single node.
    pub fn max_target_multiplicity(&self) -> usize {
        let mut counts = vec![0usize; self.n];
        for m in &self.messages {
            let mut uniq: Vec<usize> = m.targets.clone();
            uniq.sort_unstable();
            uniq.dedup();
            for t in uniq {
                counts[t] += 1;
            }
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

/// Which engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Cover-free when its margin validates, otherwise unit scheduling.
    #[default]
    Auto,
    /// Force the scheduled unit-instance engine.
    Unit,
    /// Force the cover-free engine (error if infeasible).
    CoverFree,
}

/// Router tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Engine selection.
    pub mode: RoutingMode,
    /// Fan the per-pack encode (round-A frame assembly) and decode (round-B
    /// erasure decoding) out across the rayon thread pool. Bit-identical to
    /// the serial path (`false` — the oracle behind
    /// [`unit::route_unit_serial`] / [`coverfree::route_coverfree_serial`]);
    /// network rounds themselves stay strictly sequential either way.
    pub parallel: bool,
    /// Run the session on the **event-driven pack executor**: round-A
    /// codeword encoding and frame assembly for upcoming packs run ahead of
    /// the network's virtual clock on the shared worker pool
    /// ([`crate::exec`]), staging finished batches on a
    /// [`bdclique_netsim::MessageBus`] keyed by virtual delivery time, while
    /// round-B erasure decoding drains asynchronously behind it. Exchanges
    /// themselves stay strictly serialized in virtual-round order (the
    /// mobile adversary acts per virtual round), so wire content, stats,
    /// history digests, and outputs are bit-identical to the lockstep path —
    /// property-tested in `tests/event_identity.rs`. Costs one instance
    /// clone on the borrowed-[`route`] path (background tasks need owned
    /// data); [`RouteSession::new`]/[`RouteSession::new_cached`] hand over
    /// ownership and pay nothing.
    pub event_driven: bool,
    /// Bits per Reed–Solomon symbol (field GF(2^m)); the wire slot is one
    /// bit wider (a validity flag).
    pub symbol_bits: u32,
    /// Extra error-correction slack added on top of the `2·⌊αn⌋` worst-case
    /// adversarial symbol corruptions.
    pub extra_error_slack: usize,
    /// Cover-free engine: ground-group size (elements per group); the
    /// receiver-set size is `n / group_size`. `None` picks
    /// `max(4, 2·k)` where `k` is the instance's multiplicity.
    pub cf_group_size: Option<usize>,
    /// Cover-free engine: maximum acceptable verified cover fraction δ.
    pub cf_delta: f64,
    /// Cover-free engine: seed-retry budget for the verified construction.
    pub cf_seed_tries: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            mode: RoutingMode::Auto,
            parallel: true,
            event_driven: false,
            symbol_bits: 8,
            extra_error_slack: 1,
            cf_group_size: None,
            cf_delta: 0.5,
            cf_seed_tries: 64,
        }
    }
}

/// Which engine actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUsed {
    /// Scheduled unit instances.
    Unit,
    /// Cover-free parallel routing.
    CoverFree,
}

/// Execution report for a routing call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingReport {
    /// Engine that ran.
    pub engine: EngineUsed,
    /// Network rounds consumed.
    pub rounds: u64,
    /// Unit engine: number of stages scheduled (1 for cover-free).
    pub stages: usize,
    /// Payload chunks per message.
    pub chunks: usize,
    /// Codeword decodes that failed (0 when the adversary is within the
    /// validated margin).
    pub decode_failures: usize,
}

/// Routing results: `delivered[v]` maps `(src, slot)` to the payload `v`
/// decoded. `BTreeMap` so iteration order is identical on every process —
/// the determinism invariant the no-hashmap-iteration lint enforces.
#[derive(Debug, Clone)]
pub struct RoutingOutput {
    /// Per-node delivered payloads.
    pub delivered: Vec<BTreeMap<(usize, usize), BitVec>>,
    /// Execution report.
    pub report: RoutingReport,
}

/// A routing call in flight: one [`RouteSession::step`] advances exactly one
/// network `exchange`, so callers (protocol sessions, the driver) can observe
/// or intervene between rounds. Engine selection and feasibility validation
/// happen at construction, before any round runs — exactly as [`route`]
/// behaved, which is now a thin loop over this type. Codewords are encoded
/// lazily, per pack, optionally through a shared [`CodewordCache`]
/// ([`RouteSession::new_cached`]).
pub struct RouteSession<'i> {
    engine: EngineSession<'i>,
}

enum EngineSession<'i> {
    Unit(unit::UnitSession<'i>),
    CoverFree(coverfree::CfSession<'i>),
}

impl RouteSession<'static> {
    /// Validates the instance and constructs the configured engine's
    /// session. Takes the instance by value — protocol sessions hand over
    /// the waves they build, clone-free.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] for malformed instances and
    /// [`CoreError::Infeasible`] when no engine's decode margin validates
    /// for the network's α. No rounds run on the error path.
    pub fn new(
        net: &Network,
        instance: RoutingInstance,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        Self::with_instance(net, std::borrow::Cow::Owned(instance), cfg, None)
    }

    /// [`RouteSession::new`] with a shared [`CodewordCache`]: chunks whose
    /// codewords are already resident (from an earlier pack or an earlier
    /// session on the same cache — e.g. a previous protocol wave) skip
    /// re-encoding; misses fall back to the lazy per-pack encode path and
    /// populate the cache. Wire behavior and outputs are bit-identical to
    /// the uncached session.
    ///
    /// # Errors
    ///
    /// As [`RouteSession::new`].
    pub fn new_cached(
        net: &Network,
        instance: RoutingInstance,
        cfg: &RouterConfig,
        cache: SharedCodewordCache,
    ) -> Result<Self, CoreError> {
        Self::with_instance(net, std::borrow::Cow::Owned(instance), cfg, Some(cache))
    }
}

impl<'i> RouteSession<'i> {
    /// [`RouteSession::new`] over a borrowed instance — the zero-copy path
    /// behind [`route`] for callers that keep ownership.
    ///
    /// # Errors
    ///
    /// As [`RouteSession::new`].
    pub fn borrowed(
        net: &Network,
        instance: &'i RoutingInstance,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        Self::with_instance(net, std::borrow::Cow::Borrowed(instance), cfg, None)
    }

    fn with_instance(
        net: &Network,
        instance: std::borrow::Cow<'i, RoutingInstance>,
        cfg: &RouterConfig,
        cache: Option<SharedCodewordCache>,
    ) -> Result<Self, CoreError> {
        instance.validate()?;
        if instance.n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        // Both engines scatter codeword symbols through *every* node as a
        // relay, so they are defined only on the complete topology; on a
        // sparse graph the whole routed stack (and everything built on it)
        // reports infeasibility instead of silently dropping frames.
        if !net.topology().is_complete() {
            return Err(CoreError::infeasible(
                "super-message routing requires the complete topology (K_n): the \
                 scatter/gather pattern uses every node as a relay"
                    .to_string(),
            ));
        }
        let engine = match cfg.mode {
            RoutingMode::Unit => {
                EngineSession::Unit(unit::UnitSession::new(net, instance, cfg)?.with_cache(cache))
            }
            RoutingMode::CoverFree => EngineSession::CoverFree(
                coverfree::CfSession::new(net, instance, cfg)?.with_cache(cache),
            ),
            // Auto probes the cover-free margin first (all its infeasibility
            // checks live in parameter derivation, before any round), and
            // falls back to unit scheduling while keeping ownership of the
            // instance.
            RoutingMode::Auto => match coverfree::derive_params(net, &instance, cfg) {
                Ok(params) => EngineSession::CoverFree(
                    coverfree::CfSession::from_params(net, instance, cfg, params)?
                        .with_cache(cache),
                ),
                Err(CoreError::Infeasible { .. }) => EngineSession::Unit(
                    unit::UnitSession::new(net, instance, cfg)?.with_cache(cache),
                ),
                Err(e) => return Err(e),
            },
        };
        Ok(Self { engine })
    }

    /// Advances at most one `exchange`; returns `Some(output)` once the
    /// final round of the instance has run. Stepping a completed session is
    /// an error, not an empty result.
    ///
    /// # Errors
    ///
    /// Propagates engine errors ([`CoreError`]).
    pub fn step(&mut self, net: &mut Network) -> Result<Option<RoutingOutput>, CoreError> {
        match &mut self.engine {
            EngineSession::Unit(s) => s.step(net),
            EngineSession::CoverFree(s) => s.step(net),
        }
    }

    /// Serializes the session's dynamic state (engine discriminant, the
    /// instance, the cursor into the work list, relay holdings, and decoded
    /// chunks), quiescing any in-flight event-path work to the current step
    /// boundary first. The session remains valid; continuing to step it is
    /// bit-identical to never having snapshotted.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` so future engines with
    /// non-quiesceable state can decline.
    pub(crate) fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        match &mut self.engine {
            EngineSession::Unit(s) => {
                enc.put_u8(0);
                s.instance_ref().snapshot(enc);
                s.snapshot_state(net, enc);
            }
            EngineSession::CoverFree(s) => {
                enc.put_u8(1);
                s.instance_ref().snapshot(enc);
                s.snapshot_state(net, enc);
            }
        }
        Ok(())
    }

    /// Reopens a session from state written by [`RouteSession::snapshot`].
    /// The engine recorded in the snapshot is rebuilt directly (no Auto
    /// re-probe, so a borderline margin cannot flip engines across a
    /// restore), its derived plan re-computed from `cfg` and the decoded
    /// instance, and the dynamic state overlaid.
    ///
    /// # Errors
    ///
    /// [`CoreError`] on corrupt state or when the network's parameters no
    /// longer match the snapshotted session's (e.g. a mid-run α change).
    pub(crate) fn restore(
        net: &Network,
        cfg: &RouterConfig,
        cache: Option<SharedCodewordCache>,
        dec: &mut Dec<'_>,
    ) -> Result<RouteSession<'static>, CoreError> {
        let tag = dec.get_u8()?;
        let instance = RoutingInstance::restore(dec)?;
        instance.validate()?;
        if instance.n != net.n() {
            return Err(CoreError::invalid(
                "snapshot: instance size != network size",
            ));
        }
        if !net.topology().is_complete() {
            return Err(CoreError::infeasible(
                "super-message routing requires the complete topology (K_n)".to_string(),
            ));
        }
        let engine = match tag {
            0 => EngineSession::Unit(unit::UnitSession::restore(net, instance, cfg, cache, dec)?),
            1 => EngineSession::CoverFree(coverfree::CfSession::restore(
                net, instance, cfg, cache, dec,
            )?),
            t => return Err(CoreError::invalid(format!("snapshot: engine tag {t}"))),
        };
        Ok(RouteSession { engine })
    }
}

/// Routes an instance over the network with the configured engine, running
/// the session to completion. Borrows the instance — no payload copies.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] for malformed instances and
/// [`CoreError::Infeasible`] when no engine's decode margin validates for
/// the network's α.
pub fn route(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let mut session = RouteSession::borrowed(net, instance, cfg)?;
    loop {
        if let Some(out) = session.step(net)? {
            return Ok(out);
        }
    }
}

/// [`route`] on one thread: the bit-identity oracle for the stage-parallel
/// engines (same pattern as `compile` vs `compile_serial`).
///
/// # Errors
///
/// As [`route`].
pub fn route_serial(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let cfg = RouterConfig {
        parallel: false,
        ..cfg.clone()
    };
    route(net, instance, &cfg)
}

/// An engine's instance handle: borrowed (the zero-copy [`route`] path) or
/// behind an `Arc` so event-driven background jobs can hold the instance
/// across packs. Owned instances move behind the `Arc` for free; a borrowed
/// instance is cloned only when event mode actually needs owned data.
pub(crate) enum Inst<'i> {
    Borrowed(&'i RoutingInstance),
    Shared(std::sync::Arc<RoutingInstance>),
}

impl std::ops::Deref for Inst<'_> {
    type Target = RoutingInstance;

    fn deref(&self) -> &RoutingInstance {
        match self {
            Inst::Borrowed(i) => i,
            Inst::Shared(i) => i,
        }
    }
}

impl<'i> Inst<'i> {
    pub(crate) fn from_cow(cow: Cow<'i, RoutingInstance>, event: bool) -> Self {
        match cow {
            Cow::Owned(i) => Inst::Shared(std::sync::Arc::new(i)),
            Cow::Borrowed(i) if event => Inst::Shared(std::sync::Arc::new(i.clone())),
            Cow::Borrowed(i) => Inst::Borrowed(i),
        }
    }

    pub(crate) fn shared(&self) -> std::sync::Arc<RoutingInstance> {
        match self {
            Inst::Shared(i) => i.clone(),
            Inst::Borrowed(_) => unreachable!("event mode always holds a shared instance"),
        }
    }
}

/// Maps `f` over work units, fanned out across the rayon pool or on one
/// thread, always collecting in input order — the single switch point
/// between the engines' parallel paths and their serial oracles, so the two
/// cannot drift apart (the `compile` / `compile_serial` pattern).
pub(crate) fn map_units<T, U, F>(parallel: bool, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Send + Sync,
{
    use rayon::prelude::*;
    if parallel {
        items.into_par_iter().map(f).collect()
    } else {
        items.into_iter().map(f).collect()
    }
}

/// Reads lane `lane`'s symbol out of a wire frame, `None` when the frame is
/// too short or its validity bit is clear. Shared wire format of both
/// engines: `lanes` slots of `slot = symbol_bits + 1` bits, validity first.
pub(crate) fn lane_symbol(
    frame: &bdclique_bits::BitVec,
    lane: usize,
    slot: usize,
    symbol_bits: u32,
) -> Option<u16> {
    (frame.len() >= (lane + 1) * slot && frame.get(lane * slot))
        .then(|| frame.read_uint(lane * slot + 1, symbol_bits) as u16)
}

/// Adversarial symbols per codeword a session must absorb at the network's
/// *current* fault budget: `2·⌊αn⌋` (one budget's worth per round of the
/// two-round scatter/gather) plus the configured slack. The single
/// definition both engines size their codes from at construction **and**
/// [`check_budget`] re-evaluates on every step — keeping them one function
/// is what makes the mid-session re-validation trustworthy.
pub(crate) fn absorbed_error_budget(net: &Network, slack: usize) -> usize {
    2 * net.fault_budget() + slack
}

/// Decode margins are fixed at session construction from the then-current
/// fault budget; a [`Network::set_alpha`](bdclique_netsim::Network::set_alpha)
/// (e.g. from a scheduled observer) that *raises* the budget mid-session
/// would silently undershoot the decoding radius, so both engines
/// re-validate it before every exchange and refuse to continue once it has
/// grown past the `e_allow` symbols their code absorbs.
pub(crate) fn check_budget(net: &Network, e_allow: usize, slack: usize) -> Result<(), CoreError> {
    let e_now = absorbed_error_budget(net, slack);
    if e_now > e_allow {
        return Err(CoreError::infeasible(format!(
            "fault budget grew mid-session: the code absorbs {e_allow} adversarial symbols \
             per codeword but the current budget implies {e_now}"
        )));
    }
    Ok(())
}

/// A content-addressed cache of Reed–Solomon codewords, shared between
/// routing sessions (e.g. the two waves of
/// [`crate::protocols::DetSqrt`]) via [`SharedCodewordCache`].
///
/// Entries are keyed by an FNV-1a digest of the code's parameters and the
/// chunk's bit content, and every hit re-verifies the stored chunk bits by
/// equality — a hash collision degrades to a miss, never a wrong codeword,
/// so the cache is correctness-neutral by construction (systematic RS
/// encoding is a pure function of the chunk). A symbol budget bounds the
/// footprint: once `max_symbols` codeword symbols are resident, further
/// inserts are dropped (first-in wins — the entries most likely to recur,
/// such as the shared all-zero padding chunk, are inserted earliest).
#[derive(Debug)]
pub struct CodewordCache {
    /// digest → entries; each entry keeps the chunk for hit verification.
    map: HashMap<u64, Vec<(BitVec, Vec<u16>)>>,
    /// Codeword symbols currently resident.
    symbols: usize,
    /// Insertion stops once `symbols` would exceed this.
    max_symbols: usize,
    hits: u64,
    misses: u64,
}

/// A [`CodewordCache`] behind `Arc<Mutex<_>>`, the handle
/// [`RouteSession::new_cached`] accepts so several sessions (protocol
/// waves) can share one cache. Engines take the lock in two short batch
/// sections per pack (probe all, insert all), never inside the parallel
/// encode fan-out.
pub type SharedCodewordCache = Arc<Mutex<CodewordCache>>;

/// Creates a [`SharedCodewordCache`] with the given symbol budget
/// ([`CodewordCache::DEFAULT_MAX_SYMBOLS`] is a sensible default).
pub fn shared_codeword_cache(max_symbols: usize) -> SharedCodewordCache {
    Arc::new(Mutex::new(CodewordCache::new(max_symbols)))
}

impl CodewordCache {
    /// Default symbol budget: 2²¹ symbols ≈ 4 MiB of `u16`s — roughly 8k
    /// cached codewords at the `L = 255` codes the large-`n` scenarios use.
    pub const DEFAULT_MAX_SYMBOLS: usize = 1 << 21;

    /// An empty cache holding at most `max_symbols` codeword symbols.
    pub fn new(max_symbols: usize) -> Self {
        Self {
            map: HashMap::new(),
            symbols: 0,
            max_symbols,
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` counters across the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Codeword symbols currently resident.
    pub fn resident_symbols(&self) -> usize {
        self.symbols
    }

    /// FNV-1a over the code's identifying parameters and the chunk's bits,
    /// 64 bits at a time (the trailing partial word reads zero-padded,
    /// matching [`BitVec`]'s equality semantics).
    fn digest(code: &ReedSolomon, chunk: &BitVec) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(code.symbol_bits() as u64);
        mix(code.codeword_len() as u64);
        mix(code.message_len() as u64);
        mix(chunk.len() as u64);
        let mut pos = 0;
        while pos < chunk.len() {
            let width = (chunk.len() - pos).min(64) as u32;
            mix(chunk.read_uint(pos, width));
            pos += 64;
        }
        h
    }

    /// Looks up the codeword for `chunk` under `code`, verifying the stored
    /// chunk by equality before returning it.
    pub fn get(&mut self, code: &ReedSolomon, chunk: &BitVec) -> Option<Vec<u16>> {
        let key = Self::digest(code, chunk);
        let hit = self
            .map
            .get(&key)
            .and_then(|entries| entries.iter().find(|(c, _)| c == chunk))
            .map(|(_, cw)| cw.clone());
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Inserts a freshly encoded codeword, unless the symbol budget is
    /// exhausted or an equal chunk is already resident.
    pub fn insert(&mut self, code: &ReedSolomon, chunk: BitVec, codeword: Vec<u16>) {
        if self.symbols + codeword.len() > self.max_symbols {
            return;
        }
        let key = Self::digest(code, &chunk);
        let entries = self.map.entry(key).or_default();
        if entries.iter().any(|(c, _)| c == &chunk) {
            return;
        }
        self.symbols += codeword.len();
        entries.push((chunk, codeword));
    }
}

/// Bits `[chunk·cap, (chunk+1)·cap)` of `payload`, zero-padded to `cap` —
/// the chunk both engines encode. Shared so the cache keys and the wire
/// content cannot drift between them.
pub(crate) fn payload_chunk(payload: &BitVec, chunk: usize, cap: usize) -> BitVec {
    let start = chunk * cap;
    let end = ((chunk + 1) * cap).min(payload.len());
    let mut bits = BitVec::zeros(cap);
    if start < payload.len() {
        bits.write_bits(0, &payload.slice(start, end));
    }
    bits
}

/// Encodes `jobs` (outer: work unit, inner: that unit's chunks) into
/// codewords, fanning the units out via [`map_units`]. With a cache, all
/// chunks are probed under one lock acquisition first, only misses are
/// encoded, and fresh codewords are inserted under a second lock — the
/// parallel section never touches the mutex. Encoding is deterministic, so
/// the result is bit-identical with or without the cache, parallel or not.
pub(crate) fn encode_chunks(
    parallel: bool,
    code: &ReedSolomon,
    cache: Option<&SharedCodewordCache>,
    jobs: Vec<Vec<BitVec>>,
) -> Result<Vec<Vec<Vec<u16>>>, CoreError> {
    let encode = |bits: &BitVec| {
        code.encode_bits(bits)
            .map_err(|e| CoreError::invalid(format!("encode: {e}")))
    };
    let Some(cache) = cache else {
        let encoded: Vec<Result<Vec<Vec<u16>>, CoreError>> =
            map_units(parallel, jobs, |unit| unit.iter().map(encode).collect());
        return encoded.into_iter().collect();
    };

    // Probe pass: one lock acquisition for the whole pack.
    let probed: Vec<Vec<(BitVec, Option<Vec<u16>>)>> = {
        let mut c = cache.lock().expect("codeword cache poisoned");
        jobs.into_iter()
            .map(|unit| {
                unit.into_iter()
                    .map(|bits| {
                        let hit = c.get(code, &bits);
                        (bits, hit)
                    })
                    .collect()
            })
            .collect()
    };

    // Encode the misses, fanned out; collect fresh codewords per unit.
    type UnitEncoded = Result<(Vec<Vec<u16>>, Vec<(BitVec, Vec<u16>)>), CoreError>;
    let encoded: Vec<UnitEncoded> = map_units(parallel, probed, |unit| {
        let mut syms = Vec::with_capacity(unit.len());
        let mut fresh = Vec::new();
        for (bits, hit) in unit {
            match hit {
                Some(cw) => syms.push(cw),
                None => {
                    let cw = encode(&bits)?;
                    fresh.push((bits, cw.clone()));
                    syms.push(cw);
                }
            }
        }
        Ok((syms, fresh))
    });

    let mut out = Vec::with_capacity(encoded.len());
    let mut to_insert = Vec::new();
    for unit in encoded {
        let (syms, fresh) = unit?;
        out.push(syms);
        to_insert.extend(fresh);
    }
    if !to_insert.is_empty() {
        let mut c = cache.lock().expect("codeword cache poisoned");
        for (bits, cw) in to_insert {
            c.insert(code, bits, cw);
        }
    }
    Ok(out)
}

/// Dense relay holdings for one pack, flattened into a single contiguous
/// buffer: block-major (`block` is the relay `w` for the unit engine, the
/// lane for the cover-free engine), with per-row offsets shared by every
/// block. Replaces the former `Vec<Vec<Vec<Option<u16>>>>` tables — the
/// round-B forward-planning and decode loops walk `syms` linearly instead
/// of chasing two levels of pointers per symbol.
///
/// Absent symbols (erasures) are stored as [`RelayGrid::ABSENT`]; valid
/// symbols are field elements `< 2^8 ≤ 255`, so the sentinel is
/// unambiguous.
pub(crate) struct RelayGrid {
    syms: Vec<u16>,
    /// `row_offsets[row]` is the row's start within a block;
    /// `row_offsets[rows]` is the block stride.
    row_offsets: Vec<usize>,
}

impl RelayGrid {
    /// Sentinel for "relay holds nothing here" (a downstream erasure).
    pub(crate) const ABSENT: u16 = u16::MAX;

    /// Assembles per-block flat rows (each `row_offsets.last()` long,
    /// already sentinel-filled) produced by a [`map_units`] fan-out.
    pub(crate) fn from_blocks(blocks: Vec<Vec<u16>>, row_offsets: Vec<usize>) -> Self {
        let stride = row_offsets.last().copied().unwrap_or(0);
        let mut syms = Vec::with_capacity(blocks.len() * stride);
        for block in blocks {
            debug_assert_eq!(block.len(), stride);
            syms.extend_from_slice(&block);
        }
        Self { syms, row_offsets }
    }

    /// Uniform row offsets (`rows` rows of `width` positions each), for
    /// grids whose rows all have the same length.
    pub(crate) fn uniform_offsets(rows: usize, width: usize) -> Vec<usize> {
        (0..=rows).map(|r| r * width).collect()
    }

    #[inline]
    fn stride(&self) -> usize {
        self.row_offsets.last().copied().unwrap_or(0)
    }

    /// The symbol at `(block, row, pos)`, `None` when absent.
    #[inline]
    pub(crate) fn get(&self, block: usize, row: usize, pos: usize) -> Option<u16> {
        let s = self.syms[block * self.stride() + self.row_offsets[row] + pos];
        (s != Self::ABSENT).then_some(s)
    }

    /// Serializes the grid (a mid-pack snapshot holds one between round A
    /// and round B).
    pub(crate) fn snapshot(&self, enc: &mut Enc) {
        enc.put_seq(&self.row_offsets, |e, &o| e.put_usize(o));
        enc.put_seq(&self.syms, |e, &s| e.put_u16(s));
    }

    /// Decodes a grid written by [`RelayGrid::snapshot`].
    pub(crate) fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let row_offsets = dec.get_seq(8, Dec::get_usize)?;
        let monotonic_from_zero = row_offsets.first().is_none_or(|&o| o == 0)
            && row_offsets.windows(2).all(|w| w[0] <= w[1]);
        if !monotonic_from_zero {
            return Err(SnapError::corrupt(
                "relay grid offsets not monotonic from 0",
            ));
        }
        let syms = dec.get_seq(2, Dec::get_u16)?;
        let stride = row_offsets.last().copied().unwrap_or(0);
        if stride > 0 && !syms.len().is_multiple_of(stride) {
            return Err(SnapError::corrupt(format!(
                "relay grid of {} symbols not a multiple of stride {stride}",
                syms.len()
            )));
        }
        Ok(Self { syms, row_offsets })
    }
}

/// Per-node delivered payloads: `delivered[v]` maps `(src, slot)` to bits.
pub(crate) type DeliveredMaps = Vec<BTreeMap<(usize, usize), BitVec>>;

/// Serializes per-node delivered payloads in ascending key order — the
/// deterministic encoding both engines' snapshots share. `BTreeMap`
/// iteration is already ascending by key, so the encoding is byte-identical
/// to the sorted `HashMap` encoding it replaces.
pub(crate) fn snapshot_delivered(delivered: &[BTreeMap<(usize, usize), BitVec>], enc: &mut Enc) {
    enc.put_usize(delivered.len());
    for per_node in delivered {
        let entries: Vec<(&(usize, usize), &BitVec)> = per_node.iter().collect();
        enc.put_seq(&entries, |e, ((src, slot), bits)| {
            e.put_usize(*src);
            e.put_usize(*slot);
            e.put_bits(bits);
        });
    }
}

/// Decodes what [`snapshot_delivered`] wrote, rejecting out-of-order keys
/// (which would break byte-identical re-encoding).
pub(crate) fn restore_delivered(dec: &mut Dec<'_>) -> Result<DeliveredMaps, SnapError> {
    let n = dec.get_len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut last: Option<(usize, usize)> = None;
        let entries = dec.get_seq(24, |d| {
            let src = d.get_usize()?;
            let slot = d.get_usize()?;
            let bits = d.get_bits()?;
            Ok(((src, slot), bits))
        })?;
        let mut map = BTreeMap::new();
        for ((src, slot), bits) in entries {
            if last.is_some_and(|p| p >= (src, slot)) {
                return Err(SnapError::corrupt("delivered entries out of order"));
            }
            last = Some((src, slot));
            map.insert((src, slot), bits);
        }
        out.push(map);
    }
    Ok(out)
}

/// The placeholder code for a zero-message session (nothing is encoded or
/// decoded, so only the symbol width must be representable), plus its wire
/// slot width. Shared by both engines' empty-instance guards.
pub(crate) fn empty_instance_code(
    cfg: &RouterConfig,
) -> Result<(bdclique_codes::ReedSolomon, usize), CoreError> {
    let m = cfg.symbol_bits;
    if !(2..=8).contains(&m) {
        return Err(CoreError::invalid("symbol_bits must be in 2..=8"));
    }
    let code = bdclique_codes::ReedSolomon::new(m, 2, 1)
        .map_err(|e| CoreError::invalid(format!("RS construction: {e}")))?;
    Ok((code, m as usize + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::{Adversary, Network};

    fn rs_code() -> ReedSolomon {
        ReedSolomon::new(8, 15, 9).unwrap()
    }

    fn chunk(seed: usize, len: usize) -> BitVec {
        BitVec::from_fn(len, |i| (i * 7 + seed).is_multiple_of(3))
    }

    #[test]
    fn codeword_cache_hit_verifies_and_counts() {
        let code = rs_code();
        let mut cache = CodewordCache::new(1 << 16);
        let bits = chunk(1, 72);
        assert!(cache.get(&code, &bits).is_none());
        let cw = code.encode_bits(&bits).unwrap();
        cache.insert(&code, bits.clone(), cw.clone());
        assert_eq!(cache.get(&code, &bits), Some(cw.clone()));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.resident_symbols(), cw.len());
        // A different chunk of the same length misses.
        assert!(cache.get(&code, &chunk(2, 72)).is_none());
    }

    #[test]
    fn codeword_cache_key_separates_codes() {
        // The same chunk under two different codes must not collide.
        let a = ReedSolomon::new(8, 15, 9).unwrap();
        let b = ReedSolomon::new(8, 20, 9).unwrap();
        let bits = chunk(3, 72);
        let mut cache = CodewordCache::new(1 << 16);
        cache.insert(&a, bits.clone(), a.encode_bits(&bits).unwrap());
        assert!(cache.get(&b, &bits).is_none());
        assert_eq!(cache.get(&a, &bits).unwrap(), a.encode_bits(&bits).unwrap());
    }

    #[test]
    fn codeword_cache_respects_symbol_budget() {
        let code = rs_code();
        let mut cache = CodewordCache::new(20); // room for one 15-symbol codeword
        let first = chunk(1, 72);
        let second = chunk(2, 72);
        cache.insert(&code, first.clone(), code.encode_bits(&first).unwrap());
        cache.insert(&code, second.clone(), code.encode_bits(&second).unwrap());
        assert_eq!(cache.resident_symbols(), 15);
        assert!(cache.get(&code, &first).is_some());
        assert!(cache.get(&code, &second).is_none());
    }

    #[test]
    fn codeword_cache_insert_dedupes_equal_chunks() {
        let code = rs_code();
        let mut cache = CodewordCache::new(1 << 16);
        let bits = chunk(4, 72);
        let cw = code.encode_bits(&bits).unwrap();
        cache.insert(&code, bits.clone(), cw.clone());
        cache.insert(&code, bits.clone(), cw.clone());
        assert_eq!(cache.resident_symbols(), cw.len());
    }

    #[test]
    fn relay_grid_roundtrips_ragged_rows() {
        // Two blocks, rows of widths 2 and 3 (offsets [0, 2, 5]).
        let offsets = vec![0usize, 2, 5];
        let blocks = vec![
            vec![7, RelayGrid::ABSENT, 1, 2, 3],
            vec![RelayGrid::ABSENT, 9, 4, RelayGrid::ABSENT, 6],
        ];
        let grid = RelayGrid::from_blocks(blocks, offsets);
        assert_eq!(grid.get(0, 0, 0), Some(7));
        assert_eq!(grid.get(0, 0, 1), None);
        assert_eq!(grid.get(0, 1, 2), Some(3));
        assert_eq!(grid.get(1, 0, 1), Some(9));
        assert_eq!(grid.get(1, 1, 0), Some(4));
        assert_eq!(grid.get(1, 1, 1), None);
        assert_eq!(grid.get(1, 1, 2), Some(6));
    }

    #[test]
    fn payload_chunk_pads_and_slices() {
        let payload = BitVec::from_fn(10, |i| i % 2 == 0);
        let c0 = payload_chunk(&payload, 0, 8);
        assert_eq!(c0, payload.slice(0, 8));
        let c1 = payload_chunk(&payload, 1, 8);
        assert_eq!(c1.len(), 8);
        assert_eq!(c1.slice(0, 2), payload.slice(8, 10));
        assert_eq!(c1.count_ones(), payload.slice(8, 10).count_ones());
        // Entirely past the payload: all zeros.
        assert_eq!(payload_chunk(&payload, 2, 8), BitVec::zeros(8));
    }

    /// A cached session is bit-identical to an uncached one, and a second
    /// session over the same instance and cache encodes nothing anew.
    #[test]
    fn cached_routing_matches_uncached_and_reuses_codewords() {
        let n = 16;
        let instance = RoutingInstance {
            n,
            payload_bits: 96,
            messages: (0..n)
                .map(|v| SuperMessage {
                    src: v,
                    slot: 0,
                    payload: BitVec::from_fn(96, |i| (i + v) % 5 < 2),
                    targets: vec![(v + 3) % n],
                })
                .collect(),
        };
        let cfg = RouterConfig {
            mode: RoutingMode::Unit,
            ..RouterConfig::default()
        };

        let mut net_plain = Network::new(n, 9, 0.0, Adversary::none());
        let plain = route(&mut net_plain, &instance, &cfg).unwrap();

        let cache = shared_codeword_cache(CodewordCache::DEFAULT_MAX_SYMBOLS);
        let run_cached = |cache: &SharedCodewordCache| {
            let mut net = Network::new(n, 9, 0.0, Adversary::none());
            let mut session =
                RouteSession::new_cached(&net, instance.clone(), &cfg, cache.clone()).unwrap();
            loop {
                if let Some(out) = session.step(&mut net).unwrap() {
                    return out;
                }
            }
        };

        let first = run_cached(&cache);
        assert_eq!(first.delivered.len(), plain.delivered.len());
        for (a, b) in first.delivered.iter().zip(plain.delivered.iter()) {
            assert_eq!(a, b);
        }
        let (hits_after_first, misses_after_first) = cache.lock().unwrap().stats();
        assert_eq!(hits_after_first, 0, "first run sees a cold cache");
        assert!(misses_after_first > 0);

        let second = run_cached(&cache);
        for (a, b) in second.delivered.iter().zip(plain.delivered.iter()) {
            assert_eq!(a, b);
        }
        let (hits, misses) = cache.lock().unwrap().stats();
        assert_eq!(
            misses, misses_after_first,
            "second identical run must not encode anything anew"
        );
        assert_eq!(hits, misses_after_first, "every probe of run 2 hits");
    }

    /// Both routed engines address every node as a relay, so a sparse
    /// topology is rejected as infeasible before any round runs.
    #[test]
    fn sparse_topology_is_infeasible_for_routing() {
        use bdclique_netsim::Topology;
        let instance = RoutingInstance {
            n: 8,
            payload_bits: 8,
            messages: vec![SuperMessage {
                src: 0,
                slot: 0,
                payload: BitVec::from_fn(8, |i| i % 2 == 0),
                targets: vec![3],
            }],
        };
        for mode in [RoutingMode::Auto, RoutingMode::Unit, RoutingMode::CoverFree] {
            let mut net = Network::on_topology(Topology::ring(8), 9, 0.0, Adversary::none());
            let cfg = RouterConfig {
                mode,
                ..RouterConfig::default()
            };
            assert!(
                matches!(
                    route(&mut net, &instance, &cfg),
                    Err(CoreError::Infeasible { .. })
                ),
                "{mode:?} must refuse a sparse topology"
            );
            assert_eq!(net.rounds(), 0, "no round may run on the error path");
        }
    }

    /// The cover-free engine's lazy per-pack encode path with a shared cache
    /// is bit-identical to the plain run as well.
    #[test]
    fn cached_coverfree_matches_uncached() {
        let n = 64;
        let instance = RoutingInstance {
            n,
            payload_bits: 16,
            messages: (0..n)
                .flat_map(|u| {
                    (0..2).map(move |j| SuperMessage {
                        src: u,
                        slot: j,
                        payload: BitVec::from_fn(16, |i| (i * 7 + u + 3 * j) % 5 < 2),
                        targets: vec![(u + j + 1) % n],
                    })
                })
                .collect(),
        };
        let cfg = RouterConfig {
            mode: RoutingMode::CoverFree,
            ..RouterConfig::default()
        };
        let mut net_plain = Network::new(n, 9, 0.0, Adversary::none());
        let plain = route(&mut net_plain, &instance, &cfg).unwrap();

        let cache = shared_codeword_cache(CodewordCache::DEFAULT_MAX_SYMBOLS);
        let mut net = Network::new(n, 9, 0.0, Adversary::none());
        let mut session =
            RouteSession::new_cached(&net, instance.clone(), &cfg, cache.clone()).unwrap();
        let cached = loop {
            if let Some(out) = session.step(&mut net).unwrap() {
                break out;
            }
        };
        for (a, b) in cached.delivered.iter().zip(plain.delivered.iter()) {
            assert_eq!(a, b);
        }
        let (_, misses) = cache.lock().unwrap().stats();
        assert!(misses > 0, "the lazy path must have probed the cache");
    }
}
