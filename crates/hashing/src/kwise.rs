//! Polynomial k-wise independent hash functions (Definition 5 / Lemma 2.5).

use crate::field::MersenneField;
use rand::Rng;

/// A k-wise independent hash family over the Mersenne-61 field.
///
/// Sampling a member costs `O(k log N)` random bits (Lemma 2.5): the member
/// is a uniformly random polynomial of degree `< k` over `F_p`, evaluated at
/// the input and reduced to the output range.
///
/// # Examples
///
/// ```
/// use bdclique_hash::KWiseHashFamily;
/// use rand::SeedableRng;
///
/// let family = KWiseHashFamily::new(8, 100);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let h = family.sample(&mut rng);
/// assert!(h.hash(42) < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHashFamily {
    k: usize,
    range: u64,
}

impl KWiseHashFamily {
    /// Creates the family of k-wise independent functions with outputs in
    /// `[0, range)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `range == 0` or `range > p`.
    pub fn new(k: usize, range: u64) -> Self {
        assert!(k > 0, "independence parameter k must be positive");
        assert!(
            range > 0 && range <= MersenneField::P,
            "range must be in 1..=p"
        );
        Self { k, range }
    }

    /// Independence parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output range `N`.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Samples a uniformly random member of the family.
    pub fn sample(&self, rng: &mut impl Rng) -> KWiseHash {
        let coeffs = (0..self.k)
            .map(|_| rng.gen_range(0..MersenneField::P))
            .collect();
        KWiseHash {
            coeffs,
            range: self.range,
        }
    }
}

/// A member of a [`KWiseHashFamily`]: `h(x) = (Σ c_i x^i mod p) mod N`.
///
/// The final reduction `mod N` introduces a bias of at most `N / p < 2^-40`
/// per point for the ranges used in this workspace (`N ≤ 2^20`), which is
/// far below the failure probabilities the protocols target; the paper's
/// Lemma 2.5 construction has the same property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
    range: u64,
}

impl KWiseHash {
    /// Builds a hash directly from polynomial coefficients (low degree
    /// first). Useful for deterministic test fixtures.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or `range == 0`.
    pub fn from_coeffs(coeffs: Vec<u64>, range: u64) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        assert!(range > 0, "range must be positive");
        let coeffs = coeffs.into_iter().map(|c| c % MersenneField::P).collect();
        Self { coeffs, range }
    }

    /// Evaluates the hash at `x`.
    pub fn hash(&self, x: u64) -> u64 {
        self.eval_field(x) % self.range
    }

    /// Evaluates the underlying polynomial over `F_p` (before range
    /// reduction). Exposed for sketch checksums that want full-width output.
    pub fn eval_field(&self, x: u64) -> u64 {
        let x = x % MersenneField::P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = MersenneField::add(MersenneField::mul(acc, x), c);
        }
        acc
    }

    /// The output range `N`.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The independence parameter (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn outputs_stay_in_range() {
        let family = KWiseHashFamily::new(4, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = family.sample(&mut rng);
        for x in 0..1000u64 {
            assert!(h.hash(x) < 10);
        }
    }

    #[test]
    fn constant_polynomial_is_constant() {
        let h = KWiseHash::from_coeffs(vec![7], 100);
        for x in 0..50 {
            assert_eq!(h.hash(x), 7);
        }
    }

    #[test]
    fn linear_polynomial_matches_reference() {
        // h(x) = 3 + 5x mod p mod 1000
        let h = KWiseHash::from_coeffs(vec![3, 5], 1000);
        for x in [0u64, 1, 2, 12345] {
            let expect = ((3u128 + 5u128 * x as u128) % MersenneField::P as u128) % 1000;
            assert_eq!(h.hash(x) as u128, expect);
        }
    }

    #[test]
    fn pairwise_independence_statistics() {
        // Empirical check: for a pairwise-independent family, the collision
        // rate of two fixed points over many sampled functions is ~1/N.
        let family = KWiseHashFamily::new(2, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 20_000;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = family.sample(&mut rng);
            if h.hash(3) == h.hash(77) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!((rate - 1.0 / 16.0).abs() < 0.01, "collision rate {rate}");
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let family = KWiseHashFamily::new(3, 1 << 20);
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(2);
        let h1 = family.sample(&mut r1);
        let h2 = family.sample(&mut r2);
        assert_ne!(
            (0..16).map(|x| h1.hash(x)).collect::<Vec<_>>(),
            (0..16).map(|x| h2.hash(x)).collect::<Vec<_>>()
        );
    }
}
