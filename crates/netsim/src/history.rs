//! Round history: what the adaptive adversary is allowed to remember.
//!
//! The paper's rushing adaptive adversary (footnote 4) may condition on
//! "all the messages sent throughout the network in rounds 1..i−1". Full
//! transcripts of long protocol runs are large, so recording is tiered:
//! digests (per-round corruption sets and volumes) are always available to
//! adaptive strategies, and full intended-traffic transcripts can be turned
//! on per network.

use crate::topology::Topology;
use crate::traffic::Traffic;
use bdclique_snapshot::{Dec, Enc, SnapError};
use std::sync::Arc;

/// How much the network records per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryMode {
    /// Record per-round digests only (corrupted edges, traffic volume).
    #[default]
    Digest,
    /// Record digests plus the full intended traffic of every round — the
    /// literal model of footnote 4. Memory grows with **rounds · queued
    /// frames** (each snapshot clones the round's [`Traffic`], which keeps
    /// its sparse representation): a sparse protocol round costs
    /// `O(frames)` per snapshot, and only genuinely dense rounds (load
    /// factor ≥ 1/16, e.g. `NaiveExchange`) pay the `Θ(n²)` matrix. Long
    /// dense runs at large `n` should still prefer
    /// [`HistoryMode::Digest`].
    Full,
    /// Record nothing.
    None,
}

/// One recorded round.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Round index.
    pub round: u64,
    /// The corruption set `F_i` the adversary used (normalized pairs).
    pub corrupted: Vec<(usize, usize)>,
    /// Honest frames queued that round.
    pub frames: u64,
    /// Honest bits queued that round.
    pub bits: u64,
    /// Full intended traffic (only in [`HistoryMode::Full`]).
    pub intended: Option<Traffic>,
}

/// The recorded history of a network run.
#[derive(Debug, Clone, Default)]
pub struct History {
    mode: HistoryMode,
    records: Vec<RoundRecord>,
}

impl History {
    pub(crate) fn new(mode: HistoryMode) -> Self {
        Self {
            mode,
            records: Vec::new(),
        }
    }

    /// Whether the current mode needs the round's intended traffic snapshot.
    ///
    /// The network uses this to decide *before* the round runs whether to
    /// clone the traffic matrix at all: in `Digest`/`None` mode no snapshot
    /// is ever taken, so recording costs O(corrupted edges), not O(n²).
    pub(crate) fn wants_intended(&self) -> bool {
        matches!(self.mode, HistoryMode::Full)
    }

    /// Records one round. `intended` is an owned snapshot taken by the
    /// caller **only** when [`History::wants_intended`] said so; it is moved
    /// straight into the record, so `Full` mode costs exactly one clone per
    /// round and the other modes cost none.
    pub(crate) fn push(
        &mut self,
        round: u64,
        corrupted: Vec<(usize, usize)>,
        frames: u64,
        bits: u64,
        intended: Option<Traffic>,
    ) {
        match self.mode {
            HistoryMode::None => {}
            HistoryMode::Digest => self.records.push(RoundRecord {
                round,
                corrupted,
                frames,
                bits,
                intended: None,
            }),
            HistoryMode::Full => {
                debug_assert!(
                    intended.is_some(),
                    "Full-mode push requires the caller's snapshot"
                );
                self.records.push(RoundRecord {
                    round,
                    corrupted,
                    frames,
                    bits,
                    intended,
                });
            }
        }
    }

    /// The recorded rounds, oldest first.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The recording mode.
    pub fn mode(&self) -> HistoryMode {
        self.mode
    }

    /// Total corrupted (edge, round) slots recorded.
    pub fn total_corrupted(&self) -> usize {
        self.records.iter().map(|r| r.corrupted.len()).sum()
    }

    /// Serializes the mode and every recorded round (including `Full`-mode
    /// traffic snapshots — the adaptive adversary's memory is part of the
    /// resumable state).
    pub fn snapshot(&self, enc: &mut Enc) {
        enc.put_u8(match self.mode {
            HistoryMode::Digest => 0,
            HistoryMode::Full => 1,
            HistoryMode::None => 2,
        });
        enc.put_seq(&self.records, |e, rec| {
            e.put_u64(rec.round);
            e.put_seq(&rec.corrupted, |e, &(u, v)| {
                e.put_u32(u as u32);
                e.put_u32(v as u32);
            });
            e.put_u64(rec.frames);
            e.put_u64(rec.bits);
            e.put_opt(rec.intended.as_ref(), |e, t| t.snapshot(e));
        });
    }

    /// Rebuilds a history serialized by [`History::snapshot`]. `topology`
    /// reattaches the validation handle of `Full`-mode traffic snapshots.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn restore(dec: &mut Dec<'_>, topology: Option<&Arc<Topology>>) -> Result<Self, SnapError> {
        let mode = match dec.get_u8()? {
            0 => HistoryMode::Digest,
            1 => HistoryMode::Full,
            2 => HistoryMode::None,
            t => return Err(SnapError::corrupt(format!("history mode {t}"))),
        };
        let records = dec.get_seq(25, |d| {
            let round = d.get_u64()?;
            let corrupted = d.get_seq(8, |d| {
                let u = d.get_u32()? as usize;
                let v = d.get_u32()? as usize;
                Ok((u, v))
            })?;
            let frames = d.get_u64()?;
            let bits = d.get_u64()?;
            let intended = d.get_opt(|d| Traffic::restore(d, topology))?;
            Ok(RoundRecord {
                round,
                corrupted,
                frames,
                bits,
                intended,
            })
        })?;
        Ok(Self { mode, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_mode_skips_traffic() {
        let mut h = History::new(HistoryMode::Digest);
        assert!(!h.wants_intended());
        h.push(0, vec![(0, 1)], 2, 5, None);
        assert_eq!(h.records().len(), 1);
        assert!(h.records()[0].intended.is_none());
        assert_eq!(h.total_corrupted(), 1);
    }

    #[test]
    fn full_mode_keeps_traffic() {
        let mut h = History::new(HistoryMode::Full);
        assert!(h.wants_intended());
        let t = Traffic::new(3, 4);
        h.push(0, vec![], 0, 0, Some(t));
        assert!(h.records()[0].intended.is_some());
    }

    #[test]
    fn none_mode_records_nothing() {
        let mut h = History::new(HistoryMode::None);
        assert!(!h.wants_intended());
        h.push(0, vec![(1, 2)], 1, 1, None);
        assert!(h.records().is_empty());
        assert_eq!(h.total_corrupted(), 0);
    }
}
