//! A lightweight Rust lexer: just enough tokenization for rule matching.
//!
//! The lexer's one job is to separate *code* from *non-code* so the rules
//! never fire on the contents of a comment, a string, or a char literal —
//! the classic failure mode of grep-based lint passes. It understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * plain, byte, and C strings with escapes; raw strings `r#"…"#` with
//!   any number of hashes (no escapes);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped and
//!   non-ASCII chars;
//! * raw identifiers (`r#fn`);
//! * numbers with radix prefixes and type suffixes.
//!
//! Comments are not discarded: they come back in a side channel with line
//! spans, because two rules read them (`// SAFETY:` adjacency and
//! `// bdclique-lint: allow(…)` suppressions).

/// What a token is. Rules mostly care about `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (without quotes in `text`).
    Lifetime,
    /// Any string literal (plain, byte, C, or raw). `text` is the body.
    Str,
    /// A char literal. `text` is the body between the quotes.
    Char,
    /// A numeric literal, radix prefix and suffix included.
    Num,
    /// A single punctuation byte (`.`, `:`, `<`, …). Multi-byte operators
    /// arrive as consecutive puncts (`::` is two `:` tokens).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each class stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation byte `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        if self.kind == TokKind::Ident {
            Some(&self.text)
        } else {
            None
        }
    }
}

/// One comment (line or block) with its line span, marker included.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw comment text, `//` / `/* */` markers included.
    pub text: String,
}

/// Lexer output: the code tokens and the comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order. Comments, whitespace, and string/char
    /// *contents* never appear here.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

/// Tokenizes `src`. Never panics: malformed input (unterminated strings,
/// stray bytes) degrades to best-effort tokens rather than an error — a
/// lint must keep walking the rest of the tree.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: src[start..i].to_string(),
            });
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let (start, start_line) = (i, line);
            i += 2;
            let mut depth = 1u32;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: src[start..i].to_string(),
            });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            let (body, ni, nl) = scan_escaped_string(src, i, line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: body,
                line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // Char literal or lifetime.
        if c == b'\'' {
            let next = b.get(i + 1).copied();
            match next {
                // Escaped char: '\n', '\'', '\u{1f600}'.
                Some(b'\\') => {
                    let start = i + 1;
                    i += 2; // past the backslash
                    if i < b.len() {
                        i += 1; // the escaped byte itself
                    }
                    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                        i += 1; // \u{...} payloads
                    }
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: src[start..i.saturating_sub(1).max(start)].to_string(),
                        line,
                    });
                }
                // Ident-ish follower: 'a' is a char only if a quote closes
                // it right after; otherwise it's a lifetime ('a, 'static).
                Some(n) if is_ident_byte(n) => {
                    if b.get(i + 2).copied() == Some(b'\'') {
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: src[i + 1..i + 2].to_string(),
                            line,
                        });
                        i += 3;
                    } else {
                        let start = i + 1;
                        i += 1;
                        while i < b.len() && is_ident_byte(b[i]) {
                            i += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: src[start..i].to_string(),
                            line,
                        });
                    }
                }
                // Anything else ('(' , non-ASCII, …): a char literal; scan
                // to the closing quote on this line.
                _ => {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                        i += 1;
                    }
                    let end = i;
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: src[start..end].to_string(),
                        line,
                    });
                }
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }
        // Identifier — possibly a string prefix (r" b" br" c" cr" r#")
        // or a raw identifier (r#fn).
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            let word = &src[start..i];
            let is_prefix = matches!(word, "r" | "b" | "br" | "c" | "cr");
            if is_prefix && b.get(i).copied() == Some(b'"') {
                if word.ends_with('r') {
                    // Raw string, zero hashes.
                    let (body, ni, nl) = scan_raw_string(src, i, 0, line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: body,
                        line,
                    });
                    i = ni;
                    line = nl;
                } else {
                    // b"…" / c"…": escaped string body.
                    let (body, ni, nl) = scan_escaped_string(src, i, line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: body,
                        line,
                    });
                    i = ni;
                    line = nl;
                }
                continue;
            }
            if is_prefix && word.ends_with('r') && b.get(i).copied() == Some(b'#') {
                // Count hashes; a quote makes it a raw string, an ident
                // start (for plain `r#`) makes it a raw identifier.
                let mut j = i;
                while j < b.len() && b[j] == b'#' {
                    j += 1;
                }
                let hashes = j - i;
                if b.get(j).copied() == Some(b'"') {
                    let (body, ni, nl) = scan_raw_string(src, j, hashes, line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: body,
                        line,
                    });
                    i = ni;
                    line = nl;
                    continue;
                }
                if word == "r" && hashes == 1 && j < b.len() && is_ident_start(b[j]) {
                    let rstart = j;
                    let mut k = j;
                    while k < b.len() && is_ident_byte(b[k]) {
                        k += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[rstart..k].to_string(),
                        line,
                    });
                    i = k;
                    continue;
                }
                // Not a raw string/ident after all: fall through, emitting
                // the word; the hashes lex as punctuation next.
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: word.to_string(),
                line,
            });
            continue;
        }
        // Punctuation (ASCII); stray non-ASCII bytes are skipped.
        if c.is_ascii() {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (c as char).to_string(),
                line,
            });
        }
        i += 1;
    }
    out
}

/// Scans a `"…"`-style string with `\` escapes, starting at the opening
/// quote. Returns (body, next index, next line).
fn scan_escaped_string(src: &str, open: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut i = open + 1;
    let start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                let body = src[start..i].to_string();
                return (body, i + 1, line);
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start.min(b.len())..].to_string(), b.len(), line)
}

/// Scans a raw string starting at the opening quote, with `hashes` closing
/// hashes required. Returns (body, next index, next line).
fn scan_raw_string(src: &str, open: usize, hashes: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut i = open + 1;
    let start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k).copied() == Some(b'#') {
                k += 1;
            }
            if k == hashes {
                let body = src[start..i].to_string();
                return (body, i + 1 + hashes, line);
            }
        }
        i += 1;
    }
    (src[start.min(b.len())..].to_string(), b.len(), line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_are_stripped_and_captured() {
        let l = lex("let x = 1; // trailing HashMap\n/* block\nSystemTime */ let y = 2;");
        assert_eq!(
            idents("let x = 1; // HashMap\nlet y = 2;"),
            ["let", "x", "let", "y"]
        );
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("trailing"));
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        // No identifier leaked out of a comment.
        assert!(l
            .toks
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "SystemTime"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner SystemTime */ still comment */ b");
        assert_eq!(
            l.toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "HashMap.iter() \" quoted"; t"#);
        // The contents survive only inside the Str token, never as idents.
        assert!(l.toks.iter().all(|t| !t.is_ident("HashMap")));
        let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("HashMap.iter()"));
        assert!(l.toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"no "escape" SystemTime"#; x"###);
        let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("SystemTime"));
        assert!(l.toks.iter().any(|t| t.is_ident("x")));
        assert!(!l.toks.iter().any(|t| t.is_ident("SystemTime")));

        // A raw string whose body contains a quote followed by too few
        // hashes must not terminate early.
        let l = lex(r####"r##"inner "# stays"## after"####);
        let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("stays"));
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn byte_and_c_strings() {
        let l = lex(r#"b"bytes" c"cstr" br"rawbytes" done"#);
        let strs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert!(l.toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\u{1F600}'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
        // 'static in a bound is a lifetime, not an unterminated char.
        let l = lex("fn g<T: 'static>() {}");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn punct_char_literal_and_unicode_char() {
        let l = lex("let a = '('; let b = 'α'; after");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn raw_identifiers() {
        let l = lex("let r#fn = 1; use r#type;");
        assert!(l.toks.iter().any(|t| t.is_ident("fn")));
        assert!(l.toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn numbers_including_suffixes_and_radix() {
        let l = lex("0x1f 1_000u64 0b1010 7usize 1e3 0.5");
        let nums: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert!(nums.contains(&"0x1f".to_string()));
        assert!(nums.contains(&"1_000u64".to_string()));
        assert!(nums.contains(&"7usize".to_string()));
        // `0.5` splits into 0 . 5 — fine for rule matching.
        assert!(nums.contains(&"0".to_string()) && nums.contains(&"5".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n\"two\nline string\"\nb /* c\nd */ e";
        let l = lex(src);
        let a = l.toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        let e = l.toks.iter().find(|t| t.is_ident("e")).unwrap();
        assert_eq!((a.line, b.line, e.line), (1, 4, 5));
    }

    #[test]
    fn double_colon_arrives_as_two_puncts() {
        let l = lex("std::thread::spawn");
        let texts: Vec<_> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", ":", ":", "thread", ":", ":", "spawn"]);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let l = lex("let s = \"never closed");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Str));
    }
}
