//! Fixture self-tests: every rule fires on its known-bad snippet and stays
//! quiet on the fixed version — including replicas of the two historical
//! bugs (PR 4 HashMap-iteration, PR 9 unchecked allocation) that motivated
//! this lint. The final test dogfoods the lint over the live workspace.

use std::path::{Path, PathBuf};

use bdclique_lint::{find_workspace_root, lint_source, lint_workspace, Finding};

fn fixture(rel: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    // Findings report under the real fixture path; scoping comes from the
    // file's own `lint-fixture-as:` directive.
    (format!("crates/lint/fixtures/{rel}"), src)
}

fn lint_fixture(rel: &str) -> Vec<Finding> {
    let (path, src) = fixture(rel);
    lint_source(&path, &src)
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn hashmap_iteration_fires_on_bad_quiet_on_good() {
    let bad = lint_fixture("no_hashmap_iteration/bad.rs");
    assert!(
        bad.iter()
            .filter(|f| f.rule == "no-hashmap-iteration")
            .count()
            >= 3,
        "expected .iter(), .iter() on a set, and for-in to fire: {bad:?}"
    );
    let good = lint_fixture("no_hashmap_iteration/good.rs");
    assert!(good.is_empty(), "good fixture must be clean: {good:?}");
}

#[test]
fn wallclock_fires_on_bad_quiet_on_good() {
    let bad = lint_fixture("no_wallclock/bad.rs");
    let rules = rules_of(&bad);
    assert!(
        rules
            .iter()
            .filter(|r| **r == "no-wallclock-nondeterminism")
            .count()
            >= 3,
        "Instant::now, SystemTime, and thread_rng must all fire: {bad:?}"
    );
    let good = lint_fixture("no_wallclock/good.rs");
    assert!(good.is_empty(), "good fixture must be clean: {good:?}");
}

#[test]
fn validate_before_alloc_fires_on_bad_quiet_on_good() {
    let bad = lint_fixture("validate_before_alloc/bad.rs");
    assert!(
        bad.iter()
            .filter(|f| f.rule == "validate-before-alloc")
            .count()
            >= 2,
        "with_capacity and vec![…; n] must both fire: {bad:?}"
    );
    let good = lint_fixture("validate_before_alloc/good.rs");
    assert!(good.is_empty(), "good fixture must be clean: {good:?}");
}

#[test]
fn unsafe_rule_fires_on_both_bad_shapes_quiet_on_good() {
    let outside = lint_fixture("unsafe_safety/bad_outside_shims.rs");
    assert!(
        outside
            .iter()
            .any(|f| f.rule == "unsafe-needs-safety-comment"),
        "unsafe outside shims must fire even with a SAFETY comment: {outside:?}"
    );
    let no_comment = lint_fixture("unsafe_safety/bad_no_comment.rs");
    assert!(
        no_comment
            .iter()
            .any(|f| f.rule == "unsafe-needs-safety-comment"),
        "unsafe in shims without SAFETY must fire: {no_comment:?}"
    );
    let good = lint_fixture("unsafe_safety/good.rs");
    assert!(good.is_empty(), "good fixture must be clean: {good:?}");
}

#[test]
fn raw_spawn_fires_on_bad_quiet_in_exec() {
    let bad = lint_fixture("no_raw_spawn/bad.rs");
    assert!(
        bad.iter().filter(|f| f.rule == "no-raw-spawn").count() >= 2,
        "thread::spawn and Builder::spawn must both fire: {bad:?}"
    );
    let good = lint_fixture("no_raw_spawn/good.rs");
    assert!(good.is_empty(), "core::exec may spawn: {good:?}");
}

#[test]
fn suppression_with_reason_silences_and_is_not_unused() {
    let good = lint_fixture("suppression/good.rs");
    assert!(
        good.is_empty(),
        "a reasoned suppression must silence the finding without tripping \
         unused-suppression: {good:?}"
    );
}

#[test]
fn suppression_without_reason_does_not_suppress() {
    let bad = lint_fixture("suppression/bad_no_reason.rs");
    let rules = rules_of(&bad);
    assert!(
        rules.contains(&"malformed-suppression"),
        "missing reason must be a finding: {bad:?}"
    );
    assert!(
        rules.contains(&"no-hashmap-iteration"),
        "a malformed suppression must not silence the violation: {bad:?}"
    );
}

#[test]
fn unused_suppression_is_flagged() {
    let bad = lint_fixture("suppression/bad_unused.rs");
    assert!(
        bad.iter().any(|f| f.rule == "unused-suppression"),
        "a suppression that suppresses nothing must be flagged: {bad:?}"
    );
}

#[test]
fn pr4_hashmap_iteration_replica_fires() {
    let bad = lint_fixture("history/pr4_hashmap_iteration.rs");
    assert!(
        bad.iter().any(|f| f.rule == "no-hashmap-iteration"),
        "the PR 4 LDC bug shape must fire: {bad:?}"
    );
}

#[test]
fn pr9_unchecked_alloc_replica_fires() {
    let bad = lint_fixture("history/pr9_unchecked_alloc.rs");
    assert!(
        bad.iter().any(|f| f.rule == "validate-before-alloc"),
        "the PR 9 unchecked-allocation shape must fire — note the lower-bound \
         check and checked_mul in the fixture must NOT count as validation: {bad:?}"
    );
}

/// Dogfood: the live workspace must be clean. This is the same check CI
/// runs as a blocking step; having it in tier-1 means a violation fails
/// `cargo test` before it ever reaches CI.
#[test]
fn workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let findings = lint_workspace(&root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        bdclique_lint::report::to_text(&findings)
    );
}
