// lint-fixture-as: crates/core/src/exec.rs
//! The sanctioned home: core::exec owns the worker pool.

use std::thread;

fn pool_worker() {
    let handle = thread::spawn(|| {});
    handle.join().ok();
}
