//! Property-based tests for the `BitVec` wire format.

use bdclique_bits::BitVec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn bools_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..512)) {
        let v = BitVec::from_bools(&bools);
        prop_assert_eq!(v.len(), bools.len());
        let back: Vec<bool> = v.iter().collect();
        prop_assert_eq!(back, bools);
    }

    #[test]
    fn bytes_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..512)) {
        let v = BitVec::from_bools(&bools);
        let bytes = v.to_bytes();
        prop_assert_eq!(BitVec::from_bytes(&bytes, v.len()), v);
    }

    #[test]
    fn symbols_roundtrip(
        bools in prop::collection::vec(any::<bool>(), 0..256),
        sym_bits in 1u32..=16,
    ) {
        let v = BitVec::from_bools(&bools);
        let syms = v.to_symbols(sym_bits);
        prop_assert_eq!(BitVec::from_symbols(&syms, sym_bits, v.len()), v);
    }

    #[test]
    fn hamming_is_metric(
        a in prop::collection::vec(any::<bool>(), 64),
        b in prop::collection::vec(any::<bool>(), 64),
        c in prop::collection::vec(any::<bool>(), 64),
    ) {
        let (a, b, c) = (BitVec::from_bools(&a), BitVec::from_bools(&b), BitVec::from_bools(&c));
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn xor_distance_equals_ones(
        a in prop::collection::vec(any::<bool>(), 128),
        b in prop::collection::vec(any::<bool>(), 128),
    ) {
        let a = BitVec::from_bools(&a);
        let b = BitVec::from_bools(&b);
        let mut x = a.clone();
        x.xor_assign(&b);
        prop_assert_eq!(x.count_ones(), a.hamming(&b));
    }

    #[test]
    fn slice_concat_identity(
        bools in prop::collection::vec(any::<bool>(), 1..256),
        cut in any::<prop::sample::Index>(),
    ) {
        let v = BitVec::from_bools(&bools);
        let cut = cut.index(v.len() + 1);
        let joined = BitVec::concat([&v.slice(0, cut), &v.slice(cut, v.len())]);
        prop_assert_eq!(joined, v);
    }

    #[test]
    fn uint_roundtrip(width in 1u32..=64, raw in any::<u64>()) {
        let value = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
        let mut v = BitVec::new();
        v.push_uint(width, value);
        prop_assert_eq!(v.read_uint(0, width), value);
    }

    /// The batch symbol pack (`push_uints`) is the per-symbol `push_uint`
    /// loop, masking included: any high bits beyond `width` are dropped
    /// exactly as the scalar path drops them.
    #[test]
    fn push_uints_matches_per_symbol_loop(
        prefix in prop::collection::vec(any::<bool>(), 0..70),
        values in prop::collection::vec(any::<u16>(), 0..40),
        width in 1u32..=16,
    ) {
        let mut batch = BitVec::from_bools(&prefix);
        batch.push_uints(width, &values);
        let mut scalar = BitVec::from_bools(&prefix);
        for &v in &values {
            scalar.push_uint(width, u64::from(v) & ((1u64 << width) - 1));
        }
        prop_assert_eq!(batch, scalar);
    }

    /// The batch symbol unpack (`read_uints`) is the per-symbol `read_uint`
    /// loop, with positions past the end reading as zero (the padding
    /// semantics `encode_bits` relies on).
    #[test]
    fn read_uints_matches_per_symbol_loop(
        bools in prop::collection::vec(any::<bool>(), 0..200),
        start in any::<prop::sample::Index>(),
        count in 0usize..40,
        width in 1u32..=16,
    ) {
        let v = BitVec::from_bools(&bools);
        let start = start.index(v.len() + 1);
        let batch = v.read_uints(start, width, count);
        let scalar: Vec<u16> = (0..count)
            .map(|i| {
                let pos = start + i * width as usize;
                let mut sym = 0u16;
                for b in 0..width as usize {
                    if v.try_get(pos + b).unwrap_or(false) {
                        sym |= 1 << b;
                    }
                }
                sym
            })
            .collect();
        prop_assert_eq!(batch, scalar);
    }

    /// Batch pack then unpack is the identity on masked symbols.
    #[test]
    fn uints_pack_unpack_roundtrip(
        values in prop::collection::vec(any::<u16>(), 0..48),
        width in 1u32..=16,
    ) {
        let mask = if width == 16 { u16::MAX } else { (1u16 << width) - 1 };
        let masked: Vec<u16> = values.iter().map(|&v| v & mask).collect();
        let mut v = BitVec::new();
        v.push_uints(width, &values);
        prop_assert_eq!(v.len(), values.len() * width as usize);
        prop_assert_eq!(v.read_uints(0, width, values.len()), masked);
    }
}
