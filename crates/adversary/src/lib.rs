//! Concrete mobile α-BD adversary strategies.
//!
//! The benchmark harness runs every protocol against every compatible
//! strategy here. Strategies divide along the paper's axes:
//!
//! * **Edge plans** (non-adaptive, [`bdclique_netsim::EdgePlan`]):
//!   [`plans::NoFaults`], [`plans::RandomMatchings`],
//!   [`plans::RotatingMatching`] (the α = 1/n matching that defeats
//!   tree-based aggregation — Section 3 of the paper),
//!   [`plans::RotatingStar`], [`plans::FixedEdges`], and the
//!   topology-aware camps [`plans::EclipseCamp`] and
//!   [`plans::PartitionCut`] — attacks that only fully close under the
//!   per-node budgets `⌊α·(deg(v)+1)⌋` of sparse graphs.
//! * **Corruptors** (payload rewriting on planned edges):
//!   [`corruptors::PayloadCorruptor`] with a [`Payload`] policy.
//! * **Adaptive strategies** ([`bdclique_netsim::AdaptiveStrategy`]):
//!   [`adaptive::GreedyLoad`] (corrupt the busiest edges),
//!   [`adaptive::TargetNode`] (concentrate the budget on one victim),
//!   [`adaptive::RushingRandom`] (random edges chosen among busy ones).

pub mod adaptive;
pub mod corruptors;
pub mod plans;

pub use corruptors::Payload;
