//! Adaptive (rushing) strategies: edge choice informed by the round's
//! intended traffic and any published protocol randomness.

use crate::corruptors::Payload;
use crate::rng_state;
use bdclique_netsim::{AdaptiveScope, AdaptiveStrategy, AdversaryView};
use bdclique_snapshot::{Dec, Enc, SnapError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Corrupts the edges carrying the most payload bits this round, saturating
/// the degree budget greedily. This attacks exactly the concentration points
/// protocols create (relay nodes, leaders), making it a strong generic
/// adaptive adversary.
#[derive(Debug)]
pub struct GreedyLoad {
    payload: Payload,
    rng: ChaCha8Rng,
}

impl GreedyLoad {
    /// Creates the strategy with the given payload policy.
    pub fn new(payload: Payload, seed: u64) -> Self {
        Self {
            payload,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl AdaptiveStrategy for GreedyLoad {
    fn corrupt(&mut self, _view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>) {
        // Score undirected edges by total bits both ways — discovered from
        // the O(frames) busy-slot list, never an n² probe sweep.
        let mut scored: Vec<(usize, usize, usize)> = scope
            .intended_frames()
            .into_iter()
            .map(|(from, to, bits)| {
                let (u, v) = if from < to { (from, to) } else { (to, from) };
                (bits, u, v)
            })
            .collect();
        // The slot list is (from, to)-ascending, which interleaves the two
        // directions of an undirected pair; merge them after a sort.
        scored.sort_unstable_by_key(|&(_, u, v)| (u, v));
        scored.dedup_by(|a, b| {
            if (a.1, a.2) == (b.1, b.2) {
                b.0 += a.0;
                true
            } else {
                false
            }
        });
        // Zero-length frames carry no payload worth the degree budget.
        scored.retain(|&(load, _, _)| load > 0);
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        for (_, u, v) in scored {
            if !scope.try_acquire(u, v) {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                if scope.intended(a, b).is_some() {
                    let new = self.payload.apply(scope.intended(a, b), &mut self.rng);
                    scope.try_corrupt(a, b, new);
                }
            }
        }
    }

    fn save_state(&self, enc: &mut Enc) {
        rng_state::save(enc, &self.rng);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.rng = rng_state::load(dec)?;
        Ok(())
    }
}

/// Concentrates the entire budget on edges incident to one victim node,
/// preferring the busiest ones (the attack the paper's α-BD bound is
/// designed to survive: the victim loses an α fraction of its links every
/// round, forever).
#[derive(Debug)]
pub struct TargetNode {
    /// The attacked node.
    pub victim: usize,
    payload: Payload,
    rng: ChaCha8Rng,
}

impl TargetNode {
    /// Creates the strategy.
    pub fn new(victim: usize, payload: Payload, seed: u64) -> Self {
        Self {
            victim,
            payload,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl AdaptiveStrategy for TargetNode {
    fn corrupt(&mut self, _view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>) {
        let v = self.victim;
        // The victim's real neighborhood: ascending ids — on the clique
        // that is exactly the historical `0..n` minus `v` sweep.
        let mut others: Vec<(usize, usize)> = scope
            .topology()
            .neighbors(v)
            .map(|u| {
                let load = scope.intended(u, v).map_or(0, |f| f.len())
                    + scope.intended(v, u).map_or(0, |f| f.len());
                (load, u)
            })
            .collect();
        others.sort_unstable_by(|a, b| b.cmp(a));
        for (load, u) in others {
            if load == 0 || scope.remaining_degree(v) == 0 {
                break;
            }
            if !scope.try_acquire(u, v) {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                if scope.intended(a, b).is_some() {
                    let new = self.payload.apply(scope.intended(a, b), &mut self.rng);
                    scope.try_corrupt(a, b, new);
                }
            }
        }
    }

    fn save_state(&self, enc: &mut Enc) {
        rng_state::save(enc, &self.rng);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.rng = rng_state::load(dec)?;
        Ok(())
    }
}

/// Random busy edges, chosen *after* seeing the round's traffic (rushing):
/// the natural randomized adaptive baseline.
#[derive(Debug)]
pub struct RushingRandom {
    payload: Payload,
    rng: ChaCha8Rng,
}

impl RushingRandom {
    /// Creates the strategy.
    pub fn new(payload: Payload, seed: u64) -> Self {
        Self {
            payload,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl AdaptiveStrategy for RushingRandom {
    fn corrupt(&mut self, _view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>) {
        // Busy undirected pairs, ascending — the same candidate list the old
        // n² probe sweep produced, discovered in O(frames).
        let mut busy: Vec<(usize, usize)> = scope
            .intended_frames()
            .into_iter()
            .map(|(from, to, _)| if from < to { (from, to) } else { (to, from) })
            .collect();
        busy.sort_unstable();
        busy.dedup();
        for i in (1..busy.len()).rev() {
            busy.swap(i, self.rng.gen_range(0..=i));
        }
        for (u, v) in busy {
            if !scope.try_acquire(u, v) {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                if scope.intended(a, b).is_some() {
                    let new = self.payload.apply(scope.intended(a, b), &mut self.rng);
                    scope.try_corrupt(a, b, new);
                }
            }
        }
    }

    fn save_state(&self, enc: &mut Enc) {
        rng_state::save(enc, &self.rng);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.rng = rng_state::load(dec)?;
        Ok(())
    }
}

/// Suppresses every frame to and from one victim, as far as the budget at
/// the victim allows — an eclipse attack. The α-BD model caps the victim's
/// lost links at `⌊αn⌋` per round, which is exactly the isolation bound the
/// compilers are designed around.
#[derive(Debug)]
pub struct Eclipse {
    /// The eclipsed node.
    pub victim: usize,
}

impl AdaptiveStrategy for Eclipse {
    fn corrupt(&mut self, _view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>) {
        let v = self.victim;
        // Walk the victim's real neighborhood (ascending — identical to
        // the historical `0..n` sweep on the clique).
        let neighbors: Vec<usize> = scope.topology().neighbors(v).collect();
        for u in neighbors {
            if scope.remaining_degree(v) == 0 {
                continue;
            }
            let busy = scope.intended(u, v).is_some() || scope.intended(v, u).is_some();
            if !busy {
                continue;
            }
            if scope.try_acquire(u, v) {
                scope.try_corrupt(u, v, None);
                scope.try_corrupt(v, u, None);
            }
        }
    }
}

/// A history-driven strategy: camps on the edges that have carried the most
/// traffic **across all prior rounds** (using the network's recorded
/// transcript — the knowledge footnote 4 grants the adaptive adversary).
/// Protocols with fixed communication patterns (deterministic compilers)
/// reuse edges across rounds, and this strategy finds them.
#[derive(Debug)]
pub struct HistoryCamper {
    payload: Payload,
    rng: ChaCha8Rng,
    // BTreeMap so ranking and snapshots iterate in a fixed order on every
    // process (enforced by bdclique-lint's no-hashmap-iteration rule).
    load: std::collections::BTreeMap<(usize, usize), u64>,
}

impl HistoryCamper {
    /// Creates the strategy.
    pub fn new(payload: Payload, seed: u64) -> Self {
        Self {
            payload,
            rng: ChaCha8Rng::seed_from_u64(seed),
            load: std::collections::BTreeMap::new(),
        }
    }
}

impl AdaptiveStrategy for HistoryCamper {
    fn corrupt(&mut self, view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>) {
        // Accumulate the current round's loads into long-term memory
        // (the digest history corroborates round counts; frame contents come
        // from the live view). O(frames) via the busy-slot list; zero-length
        // frames carry no load and must not enter the ranking.
        for (from, to, bits) in scope.intended_frames() {
            if bits == 0 {
                continue;
            }
            let key = if from < to { (from, to) } else { (to, from) };
            *self.load.entry(key).or_insert(0) += bits as u64;
        }
        let _ = view.history.records(); // the transcript is available too
        let mut ranked: Vec<((usize, usize), u64)> =
            self.load.iter().map(|(&e, &l)| (e, l)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for ((u, v), _) in ranked {
            if !scope.try_acquire(u, v) {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                if scope.intended(a, b).is_some() {
                    let new = self.payload.apply(scope.intended(a, b), &mut self.rng);
                    scope.try_corrupt(a, b, new);
                }
            }
        }
    }

    fn save_state(&self, enc: &mut Enc) {
        rng_state::save(enc, &self.rng);
        // BTreeMap iteration is already ascending by key — byte-identical
        // to the sorted HashMap encoding this replaces.
        let entries: Vec<((usize, usize), u64)> = self.load.iter().map(|(&e, &l)| (e, l)).collect();
        enc.put_seq(&entries, |e, &((u, v), load)| {
            e.put_u32(u as u32);
            e.put_u32(v as u32);
            e.put_u64(load);
        });
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.rng = rng_state::load(dec)?;
        let entries = dec.get_seq(16, |d| {
            let u = d.get_u32()? as usize;
            let v = d.get_u32()? as usize;
            let load = d.get_u64()?;
            Ok(((u, v), load))
        })?;
        self.load = entries.into_iter().collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_bits::BitVec;
    use bdclique_netsim::{Adversary, Network};

    fn busy_network(strategy: impl AdaptiveStrategy + 'static, alpha: f64) -> (Network, u64) {
        let mut net = Network::new(8, 4, alpha, Adversary::adaptive(strategy));
        let mut t = net.traffic();
        for u in 0..8 {
            for v in 0..8 {
                if u != v {
                    t.send(u, v, BitVec::from_bools(&[true, false]));
                }
            }
        }
        net.exchange(t);
        let corrupted = net.stats().edges_corrupted;
        (net, corrupted)
    }

    #[test]
    fn greedy_load_saturates_budget() {
        let (net, corrupted) = busy_network(GreedyLoad::new(Payload::Flip, 1), 0.5);
        // budget 4 per node, 8 nodes: at most 16 edges; greedy should grab
        // a maximal set.
        assert!(corrupted > 0);
        assert!(net.stats().peak_fault_degree <= 4);
    }

    #[test]
    fn target_node_respects_victim_budget() {
        let (net, corrupted) = busy_network(TargetNode::new(3, Payload::Suppress, 2), 0.25);
        assert!(corrupted <= 2); // budget = 2 at the victim
        assert!(net.stats().peak_fault_degree <= 2);
    }

    #[test]
    fn rushing_random_stays_within_budget() {
        let (net, corrupted) = busy_network(RushingRandom::new(Payload::Random, 3), 0.25);
        assert!(corrupted > 0);
        assert!(net.stats().peak_fault_degree <= 2);
    }

    #[test]
    fn eclipse_only_touches_victim_edges() {
        let (net, corrupted) = busy_network(Eclipse { victim: 5 }, 0.25);
        assert!(corrupted <= 2);
        assert!(net.stats().peak_fault_degree <= 2);
    }

    #[test]
    fn history_camper_acts_and_respects_budget() {
        let (net, corrupted) = busy_network(HistoryCamper::new(Payload::Flip, 8), 0.25);
        assert!(corrupted > 0);
        assert!(net.stats().peak_fault_degree <= 2);
    }

    #[test]
    fn zero_budget_means_no_corruption() {
        let (net, corrupted) = busy_network(GreedyLoad::new(Payload::Flip, 4), 0.1);
        // alpha = 0.1, n = 8 => budget 0.
        assert_eq!(corrupted, 0);
        assert_eq!(net.stats().frames_corrupted, 0);
    }
}
