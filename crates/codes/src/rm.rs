//! Bivariate Reed–Muller locally decodable code with line queries.
//!
//! This is the production LDC standing in for the
//! Kopparty–Meir–Ron-Zewi–Saraf code of Lemma 2.2 (see `DESIGN.md`,
//! substitution 1). The message is interpreted as the evaluations of a
//! bivariate polynomial `f` of total degree ≤ `d` on the *principal lattice*
//! `{(x_i, y_j) : i + j ≤ d}`; the codeword is the evaluation of `f` on the
//! whole plane GF(q)². Decoding position `p` queries the `q` points of
//! `lines` random lines through `p` and Berlekamp–Welch-decodes each
//! restricted univariate polynomial, then majority-votes `f(p)`.
//!
//! Properties (for field size `q = 2^m`, degree `d`):
//!
//! * message length `(d+1)(d+2)/2` symbols, codeword length `q²` symbols,
//! * relative distance `1 - d/q` (Schwartz–Zippel),
//! * query complexity `lines · q`, non-adaptive,
//! * each line tolerates `⌊(q - d - 1)/2⌋` corrupted points; the majority
//!   over `lines` lines amplifies the success probability exactly as the
//!   paper's `LDCDecode` requires.

use crate::error::CodeError;
use crate::gf::Gf;
use crate::ldc::Ldc;
use crate::linalg::{berlekamp_welch, invert_matrix};
use bdclique_hash::SharedRandomness;

/// Bivariate Reed–Muller LDC over GF(2^m).
///
/// # Examples
///
/// ```
/// use bdclique_codes::{RmLdc, Ldc};
/// use bdclique_hash::SharedRandomness;
/// use bdclique_bits::BitVec;
///
/// let ldc = RmLdc::new(4, 5, 3).unwrap(); // GF(16), degree 5, 3 lines
/// let msg: Vec<u16> = (0..ldc.message_len() as u16).map(|i| i % 16).collect();
/// let cw = ldc.encode(&msg).unwrap();
/// let shared = SharedRandomness::from_bits(&BitVec::zeros(64));
/// let qs = ldc.decode_indices(7, &shared);
/// let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
/// assert_eq!(ldc.local_decode(7, &answers, &shared).unwrap(), msg[7]);
/// ```
#[derive(Debug, Clone)]
pub struct RmLdc {
    gf: Gf,
    q: usize,
    d: usize,
    lines: usize,
    /// Grid points (x, y) with x + y ≤ d (as integer indices into the field).
    grid: Vec<(u16, u16)>,
    /// Maps grid values to polynomial coefficients: `coeffs = basis_inv · values`.
    basis_inv: Vec<Vec<u16>>,
    /// Monomial exponents aligned with coefficient order.
    monomials: Vec<(u32, u32)>,
}

impl RmLdc {
    /// Builds a bivariate Reed–Muller LDC over GF(2^m) with total degree `d`
    /// and `lines`-fold line amplification.
    ///
    /// # Errors
    ///
    /// Rejects `d + 1 > q` (no distance left), `lines == 0`, and degenerate
    /// parameter combinations where unique line decoding is impossible
    /// (`q < d + 1`).
    pub fn new(m: u32, d: usize, lines: usize) -> Result<Self, CodeError> {
        let gf = Gf::new(m);
        let q = gf.size() as usize;
        if d + 1 >= q || lines == 0 {
            return Err(CodeError::LengthMismatch {
                expected: q - 1,
                actual: d + 1,
            });
        }
        let mut grid = Vec::new();
        let mut monomials = Vec::new();
        for a in 0..=d {
            for b in 0..=(d - a) {
                grid.push((a as u16, b as u16));
                monomials.push((a as u32, b as u32));
            }
        }
        let k = grid.len();
        // Evaluation matrix of the monomial basis on the grid.
        let matrix: Vec<Vec<u16>> = grid
            .iter()
            .map(|&(x, y)| {
                monomials
                    .iter()
                    .map(|&(a, b)| gf.mul(gf.pow(x, a), gf.pow(y, b)))
                    .collect()
            })
            .collect();
        let basis_inv = invert_matrix(&gf, &matrix).ok_or(CodeError::TooManyErrors {
            context: "principal lattice not unisolvent (internal)",
        })?;
        debug_assert_eq!(basis_inv.len(), k);
        Ok(Self {
            gf,
            q,
            d,
            lines,
            grid,
            basis_inv,
            monomials,
        })
    }

    /// The field size `q = 2^m`.
    pub fn field_size(&self) -> usize {
        self.q
    }

    /// The polynomial degree bound `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of errors a single line decode tolerates.
    pub fn line_error_capacity(&self) -> usize {
        (self.q - self.d - 1) / 2
    }

    fn position(&self, x: u16, y: u16) -> usize {
        x as usize * self.q + y as usize
    }

    /// The `lines` random directions used to decode `index` (deterministic
    /// in `(index, shared)` — the non-adaptivity of Definition 4).
    fn directions(&self, index: usize, shared: &SharedRandomness) -> Vec<(u16, u16)> {
        let samples = shared.uniform_samples(
            &format!("rmldc/{index}"),
            self.lines,
            (self.q * self.q - 1) as u64,
        );
        samples
            .into_iter()
            .map(|s| {
                let s = s as usize + 1; // skip (0,0)
                ((s / self.q) as u16, (s % self.q) as u16)
            })
            .collect()
    }
}

impl Ldc for RmLdc {
    fn message_len(&self) -> usize {
        self.grid.len()
    }

    fn codeword_len(&self) -> usize {
        self.q * self.q
    }

    fn symbol_bits(&self) -> u32 {
        self.gf.m()
    }

    fn query_count(&self) -> usize {
        self.lines * self.q
    }

    fn tolerated_fraction(&self) -> f64 {
        // A random line point is uniform over the plane, so a δ-corrupted
        // codeword yields ~δq corrupted points per line; line decoding
        // absorbs (q-d-1)/2 of them. Conservative design threshold:
        (self.line_error_capacity() as f64 / self.q as f64) / 2.0
    }

    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
        let k = self.grid.len();
        if msg.len() != k {
            return Err(CodeError::LengthMismatch {
                expected: k,
                actual: msg.len(),
            });
        }
        for &s in msg {
            if s as u32 >= self.gf.size() {
                return Err(CodeError::SymbolOutOfRange {
                    value: s,
                    alphabet: self.gf.size(),
                });
            }
        }
        // coeffs = basis_inv · msg
        let coeffs: Vec<u16> = self
            .basis_inv
            .iter()
            .map(|row| self.gf.dot(row, msg))
            .collect();
        // Evaluate everywhere: for each x, collapse to a univariate poly in y.
        let mut out = vec![0u16; self.codeword_len()];
        let mut xpow = vec![0u16; self.d + 1];
        for xi in 0..self.q as u16 {
            // Powers of xi up to the degree bound, one table mul each.
            xpow[0] = 1;
            for a in 1..=self.d {
                xpow[a] = self.gf.mul(xpow[a - 1], xi);
            }
            // g_b(x) = sum_a coeff_{a,b} x^a for each y-degree b.
            let mut uni = vec![0u16; self.d + 1];
            for ((a, b), &c) in self.monomials.iter().zip(&coeffs) {
                uni[*b as usize] ^= self.gf.mul(c, xpow[*a as usize]);
            }
            for yi in 0..self.q as u16 {
                out[self.position(xi, yi)] = self.gf.poly_eval(&uni, yi);
            }
        }
        Ok(out)
    }

    fn decode_indices(&self, index: usize, shared: &SharedRandomness) -> Vec<usize> {
        assert!(
            index < self.grid.len(),
            "message index {index} out of range {}",
            self.grid.len()
        );
        let (px, py) = self.grid[index];
        let mut out = Vec::with_capacity(self.query_count());
        for (dx, dy) in self.directions(index, shared) {
            for t in 0..self.q as u16 {
                let x = self.gf.add(px, self.gf.mul(t, dx));
                let y = self.gf.add(py, self.gf.mul(t, dy));
                out.push(self.position(x, y));
            }
        }
        out
    }

    fn local_decode(
        &self,
        index: usize,
        answers: &[u16],
        _shared: &SharedRandomness,
    ) -> Result<u16, CodeError> {
        if answers.len() != self.query_count() {
            return Err(CodeError::LengthMismatch {
                expected: self.query_count(),
                actual: answers.len(),
            });
        }
        let ts: Vec<u16> = (0..self.q as u16).collect();
        let e_max = self.line_error_capacity();
        let mut votes: Vec<(u16, usize)> = Vec::new();
        for line in 0..self.lines {
            let ys = &answers[line * self.q..(line + 1) * self.q];
            if let Some(g) = berlekamp_welch(&self.gf, &ts, ys, self.d, e_max) {
                // f(p) = g(0) = constant coefficient.
                let v = g[0];
                match votes.iter_mut().find(|(val, _)| *val == v) {
                    Some((_, c)) => *c += 1,
                    None => votes.push((v, 1)),
                }
            }
        }
        let _ = index;
        votes.sort_by_key(|v| std::cmp::Reverse(v.1));
        match votes.first() {
            Some(&(v, c)) if 2 * c > self.lines => Ok(v),
            Some(_) => Err(CodeError::NoMajority),
            None => Err(CodeError::TooManyErrors {
                context: "all line decodings failed",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_bits::BitVec;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn shared(tag: u64) -> SharedRandomness {
        let mut rng = ChaCha8Rng::seed_from_u64(tag);
        SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng))
    }

    fn sample_msg(ldc: &RmLdc, seed: u64) -> Vec<u16> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..ldc.message_len())
            .map(|_| rng.gen_range(0..ldc.field_size()) as u16)
            .collect()
    }

    #[test]
    fn parameters_line_up() {
        let ldc = RmLdc::new(4, 5, 3).unwrap();
        assert_eq!(ldc.field_size(), 16);
        assert_eq!(ldc.message_len(), 21); // (5+1)(5+2)/2
        assert_eq!(ldc.codeword_len(), 256);
        assert_eq!(ldc.query_count(), 48);
        assert_eq!(ldc.line_error_capacity(), 5);
    }

    #[test]
    fn encoding_is_systematic_on_the_grid() {
        // Codeword restricted to grid positions equals the message.
        let ldc = RmLdc::new(4, 4, 1).unwrap();
        let msg = sample_msg(&ldc, 1);
        let cw = ldc.encode(&msg).unwrap();
        for (i, &(x, y)) in ldc.grid.iter().enumerate() {
            assert_eq!(cw[ldc.position(x, y)], msg[i], "grid point {i}");
        }
    }

    #[test]
    fn clean_local_decoding_recovers_every_index() {
        let ldc = RmLdc::new(4, 5, 3).unwrap();
        let msg = sample_msg(&ldc, 2);
        let cw = ldc.encode(&msg).unwrap();
        let sh = shared(1);
        for i in 0..ldc.message_len() {
            let qs = ldc.decode_indices(i, &sh);
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            assert_eq!(
                ldc.local_decode(i, &answers, &sh).unwrap(),
                msg[i],
                "index {i}"
            );
        }
    }

    #[test]
    fn survives_random_corruption_below_threshold() {
        let ldc = RmLdc::new(4, 5, 5).unwrap();
        let msg = sample_msg(&ldc, 3);
        let mut cw = ldc.encode(&msg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = cw.len();
        // 8% corruption (threshold fraction is ~15%).
        for _ in 0..(n * 8 / 100) {
            let p = rng.gen_range(0..n);
            cw[p] = rng.gen_range(0..16);
        }
        let sh = shared(2);
        let mut ok = 0;
        for i in 0..ldc.message_len() {
            let qs = ldc.decode_indices(i, &sh);
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            if ldc.local_decode(i, &answers, &sh) == Ok(msg[i]) {
                ok += 1;
            }
        }
        assert!(
            ok * 10 >= ldc.message_len() * 9,
            "only {ok}/{} indices decoded",
            ldc.message_len()
        );
    }

    #[test]
    fn survives_adversarial_row_wipe() {
        // Corrupt entire rows of the plane (a "concentrated" adversary):
        // random lines still mostly avoid them.
        let ldc = RmLdc::new(4, 3, 5).unwrap();
        let msg = sample_msg(&ldc, 5);
        let mut cw = ldc.encode(&msg).unwrap();
        let q = ldc.field_size();
        for x in [13usize, 14] {
            for y in 0..q {
                cw[x * q + y] ^= 0xf; // wipe two full rows (12.5% of the word)
            }
        }
        let sh = shared(3);
        let mut ok = 0;
        for i in 0..ldc.message_len() {
            let qs = ldc.decode_indices(i, &sh);
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            if ldc.local_decode(i, &answers, &sh) == Ok(msg[i]) {
                ok += 1;
            }
        }
        assert!(
            ok * 10 >= ldc.message_len() * 9,
            "only {ok}/{} indices decoded",
            ldc.message_len()
        );
    }

    #[test]
    fn nonadaptive_queries_are_reproducible() {
        let ldc = RmLdc::new(3, 2, 2).unwrap();
        let sh = shared(6);
        assert_eq!(ldc.decode_indices(0, &sh), ldc.decode_indices(0, &sh));
        let wire = BitVec::from_fn(128, |i| i % 5 == 0);
        let a = SharedRandomness::from_bits(&wire);
        let b = SharedRandomness::from_bits(&wire);
        assert_eq!(ldc.decode_indices(3, &a), ldc.decode_indices(3, &b));
    }

    #[test]
    fn distance_soundness_spot_check() {
        // Two different messages must yield codewords at relative distance
        // >= 1 - d/q.
        let ldc = RmLdc::new(4, 3, 1).unwrap();
        let m1 = sample_msg(&ldc, 10);
        let mut m2 = m1.clone();
        m2[0] ^= 1;
        let c1 = ldc.encode(&m1).unwrap();
        let c2 = ldc.encode(&m2).unwrap();
        let diff = c1.iter().zip(&c2).filter(|(a, b)| a != b).count();
        let min = ldc.codeword_len() - ldc.degree() * ldc.field_size();
        assert!(diff >= min, "distance {diff} < {min}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(RmLdc::new(3, 7, 1).is_err()); // d+1 >= q
        assert!(RmLdc::new(4, 3, 0).is_err()); // no lines
    }

    #[test]
    fn larger_field_smoke() {
        let ldc = RmLdc::new(5, 7, 3).unwrap(); // GF(32), 1024-symbol codeword
        let msg = sample_msg(&ldc, 11);
        let cw = ldc.encode(&msg).unwrap();
        let sh = shared(7);
        for i in [0usize, 5, ldc.message_len() - 1] {
            let qs = ldc.decode_indices(i, &sh);
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            assert_eq!(ldc.local_decode(i, &answers, &sh).unwrap(), msg[i]);
        }
    }
}
