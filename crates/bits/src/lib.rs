//! Compact bit vectors for the B-Congested-Clique wire format.
//!
//! Every message exchanged in the simulated clique is a [`BitVec`]: an
//! arbitrary-length sequence of bits with cheap push/read/slice operations,
//! fixed-width integer packing, XOR and Hamming-distance support (used by the
//! error-correcting-code layer), and symbol (de)packing for codes over
//! GF(2^m).
//!
//! The crate has no dependencies so that every other crate in the workspace
//! can build on it.
//!
//! # Examples
//!
//! ```
//! use bdclique_bits::BitVec;
//!
//! let mut bits = BitVec::new();
//! bits.push(true);
//! bits.push_uint(7, 0b1010_101);
//! assert_eq!(bits.len(), 8);
//! assert_eq!(bits.read_uint(1, 7), 0b1010_101);
//! ```

mod bitvec;

pub use bitvec::BitVec;

/// Number of bits needed to represent values `0..n` (i.e. `ceil(log2(n))`,
/// with `bits_for(0) == 0` and `bits_for(1) == 0`).
///
/// This is the standard identifier width used throughout the protocols: node
/// ids in `KT1` are `{0, …, n-1}`, so an id costs `bits_for(n)` bits.
///
/// # Examples
///
/// ```
/// assert_eq!(bdclique_bits::bits_for(1), 0);
/// assert_eq!(bdclique_bits::bits_for(2), 1);
/// assert_eq!(bdclique_bits::bits_for(256), 8);
/// assert_eq!(bdclique_bits::bits_for(257), 9);
/// ```
pub fn bits_for(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(1025), 11);
    }
}
