//! Shared experiment harness for the `tables` binary and the Criterion
//! benches: protocol/adversary factories, trial execution, the declarative
//! [`scenario`] engine, and plain-text table rendering.
//!
//! `DESIGN.md` maps every experiment id (`T1.R1` … `A.SKETCH`) to the
//! functions in [`crate::experiments`]; `EXPERIMENTS.md` records the
//! measured outcomes against the paper's claims.
//!
//! # Seeding discipline
//!
//! Every trial draws three *independent* seeds — instance, adversary,
//! protocol — derived from one root via labelled [`SeedStream`] forks
//! ([`TrialSeeds::derive`]). Trial roots are in turn forked from a per-cell
//! stream that hashes the full cell coordinates (scenario name, protocol,
//! adversary, `n`, `b`, bandwidth, α), so no two experiment cells replay
//! each other's random streams and no component within a trial can be
//! correlated with another. An earlier revision fed the *same* seed to the
//! instance RNG and the adversary and reused seeds `1000 + t` across every
//! cell; the scenario engine fixes that at the architecture level.

pub mod checkpoint;
pub mod experiments;
pub mod merge;
pub mod scenario;
pub mod trajectory;

use bdclique_adversary::adaptive::{GreedyLoad, RushingRandom, TargetNode};
use bdclique_adversary::corruptors::PayloadCorruptor;
use bdclique_adversary::plans::{
    Alternate, Burst, EclipseCamp, PartitionCut, RandomMatchings, RelayPathHunter,
    RotatingMatching, RotatingStar,
};
use bdclique_adversary::Payload;
use bdclique_core::driver::{RoundDelta, RoundObserver, RoundTrace};
use bdclique_core::protocols::AllToAllProtocol;
use bdclique_core::{AllToAllInstance, CoreError, Driver};
use bdclique_netsim::{Adversary, Network, SeedStream, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Which adversary to attach to a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarySpec {
    /// Fault-free.
    None,
    /// Non-adaptive: `⌊αn⌋` random matchings per round, planned up front,
    /// flipping every controlled frame.
    RandomMatchingsFlip,
    /// Non-adaptive: the rotating tournament matching (α = 1/n class).
    RotatingMatchingFlip,
    /// Non-adaptive: the degree-1 relay-path hunter for pair (src, dst).
    RelayHunter(usize, usize),
    /// Non-adaptive, time-varying: random matchings active only in the
    /// first `burst` rounds of every `period`-round window
    /// ([`Burst`]-composed).
    BurstFlip {
        /// Window length in rounds.
        period: u64,
        /// Active rounds at the start of each window.
        burst: u64,
    },
    /// Non-adaptive, time-varying: periodic phase alternation — random
    /// matchings for the first `split` rounds of every window, then a
    /// rotating star on node 0 ([`Alternate`]-composed).
    PhasedFlip {
        /// Window length in rounds.
        period: u64,
        /// Matching rounds at the start of each window.
        split: u64,
    },
    /// Adaptive: greedily corrupt the busiest edges (rushing).
    GreedyFlip,
    /// Adaptive: concentrate the budget on one victim.
    TargetNodeFlip(usize),
    /// Adaptive: random busy edges, rushing, random payloads.
    RushingRandom,
    /// Non-adaptive, topology-aware: camps **all** of `target`'s incident
    /// edges for the first `rounds` rounds ([`EclipseCamp`]). Only fully
    /// realizable on sparse graphs, where the degree-relative budget
    /// `⌊α·(deg(v)+1)⌋` can reach `deg(v)`; on the clique it degrades to
    /// camping `⌊αn⌋` spokes.
    Eclipse {
        /// The eclipsed node.
        target: usize,
        /// Camp duration in rounds.
        rounds: u64,
    },
    /// Non-adaptive, topology-aware: camps the crossing edges of a seeded
    /// balanced bipartition ([`PartitionCut`]). Closes the whole cut only on
    /// sparse graphs (`Θ(n²)` crossing edges on the clique vs. `O(n)`
    /// budgets).
    Partition {
        /// Seed of the camped bipartition.
        cut_seed: u64,
    },
}

impl AdversarySpec {
    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarySpec::None => "none",
            AdversarySpec::RandomMatchingsFlip => "nbd-matchings",
            AdversarySpec::RotatingMatchingFlip => "nbd-rotating",
            AdversarySpec::RelayHunter(..) => "nbd-hunter",
            AdversarySpec::BurstFlip { .. } => "nbd-burst",
            AdversarySpec::PhasedFlip { .. } => "nbd-phased",
            AdversarySpec::GreedyFlip => "abd-greedy",
            AdversarySpec::TargetNodeFlip(_) => "abd-victim",
            AdversarySpec::RushingRandom => "abd-rushing",
            AdversarySpec::Eclipse { .. } => "nbd-eclipse",
            AdversarySpec::Partition { .. } => "nbd-partition",
        }
    }

    /// Canonical key naming the spec *and* its parameters — the string that
    /// distinguishes e.g. `RelayHunter(3, 11)` from `RelayHunter(0, 1)` in
    /// seed derivation and JSON output, where [`AdversarySpec::name`] would
    /// collide.
    pub fn key(&self) -> String {
        match self {
            AdversarySpec::RelayHunter(src, dst) => format!("nbd-hunter({src},{dst})"),
            AdversarySpec::TargetNodeFlip(victim) => format!("abd-victim({victim})"),
            AdversarySpec::BurstFlip { period, burst } => {
                format!("nbd-burst({burst}/{period})")
            }
            AdversarySpec::PhasedFlip { period, split } => {
                format!("nbd-phased({split}/{period})")
            }
            AdversarySpec::Eclipse { target, rounds } => {
                format!("nbd-eclipse({target},{rounds})")
            }
            AdversarySpec::Partition { cut_seed } => format!("nbd-partition({cut_seed})"),
            other => other.name().to_string(),
        }
    }

    /// Builds the adversary (deterministic in `seed`).
    ///
    /// Components with their own randomness — the edge plan / adaptive
    /// strategy and the payload corruptor — are seeded from *separate*
    /// [`SeedStream`] forks of `seed`, so a plan can never be correlated
    /// with the payloads it carries.
    pub fn build(&self, seed: u64) -> Adversary {
        let stream = SeedStream::new(seed);
        let plan_seed = stream.fork("plan").seed();
        let payload_seed = stream.fork("payload").seed();
        match *self {
            AdversarySpec::None => Adversary::none(),
            AdversarySpec::RandomMatchingsFlip => Adversary::non_adaptive(
                RandomMatchings::new(plan_seed),
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
            AdversarySpec::RotatingMatchingFlip => Adversary::non_adaptive(
                RotatingMatching::new(),
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
            AdversarySpec::RelayHunter(src, dst) => Adversary::non_adaptive(
                RelayPathHunter { src, dst },
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
            AdversarySpec::BurstFlip { period, burst } => Adversary::non_adaptive(
                Burst::new(RandomMatchings::new(plan_seed), period, burst),
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
            AdversarySpec::PhasedFlip { period, split } => Adversary::non_adaptive(
                Alternate::new(
                    RandomMatchings::new(plan_seed),
                    RotatingStar { victim: 0 },
                    split,
                    period,
                ),
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
            AdversarySpec::GreedyFlip => {
                Adversary::adaptive(GreedyLoad::new(Payload::Flip, plan_seed))
            }
            AdversarySpec::TargetNodeFlip(victim) => {
                Adversary::adaptive(TargetNode::new(victim, Payload::Flip, plan_seed))
            }
            AdversarySpec::RushingRandom => {
                Adversary::adaptive(RushingRandom::new(Payload::Random, plan_seed))
            }
            AdversarySpec::Eclipse { target, rounds } => Adversary::non_adaptive(
                EclipseCamp { target, rounds },
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
            AdversarySpec::Partition { cut_seed } => Adversary::non_adaptive(
                PartitionCut { cut_seed },
                PayloadCorruptor::new(Payload::Flip, payload_seed),
            ),
        }
    }
}

/// Which communication graph a trial runs on.
///
/// [`TopologySpec::Complete`] is the historical default: trials build the
/// network with [`Network::new`] and draw instances with
/// [`AllToAllInstance::random`], keeping every pre-topology seed sequence
/// and golden byte-identical. Sparse specs build the graph per trial,
/// mask the instance to its edge set ([`AllToAllInstance::random_on`]),
/// and open the network with [`Network::on_topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologySpec {
    /// The complete graph `K_n` — the paper's model and the default.
    #[default]
    Complete,
    /// The `log₂ n`-dimensional hypercube (`n` must be a power of two).
    Hypercube,
    /// A seeded random `d`-regular graph (constant-degree expander).
    RandomRegular {
        /// Degree.
        d: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Whether this is the clique (the zero-overhead legacy path).
    pub fn is_complete(&self) -> bool {
        matches!(self, TopologySpec::Complete)
    }

    /// Canonical key for seed derivation and JSON coordinates. Only ever
    /// hashed for non-complete specs — clique cells keep their historical
    /// seed streams.
    pub fn key(&self) -> String {
        match self {
            TopologySpec::Complete => "complete".to_string(),
            TopologySpec::Hypercube => "hypercube".to_string(),
            TopologySpec::RandomRegular { d, seed } => {
                format!("random-regular(d={d},seed={seed})")
            }
        }
    }

    /// Materializes the graph on `n` nodes.
    pub fn build(&self, n: usize) -> Topology {
        match *self {
            TopologySpec::Complete => Topology::complete(n),
            TopologySpec::Hypercube => Topology::hypercube(n),
            TopologySpec::RandomRegular { d, seed } => Topology::random_regular(n, d, seed),
        }
    }
}

/// The three independent seeds one trial consumes.
///
/// Derived from a single root by labelled [`SeedStream`] forks, so the
/// components are decorrelated while the whole trial stays reproducible
/// from one `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSeeds {
    /// Seeds the RNG that draws the random [`AllToAllInstance`].
    pub instance: u64,
    /// Passed to [`AdversarySpec::build`].
    pub adversary: u64,
    /// For the protocol's internal coins (`seed` field of the randomized
    /// protocols); unused by deterministic ones.
    pub protocol: u64,
}

impl TrialSeeds {
    /// Derives the three component seeds from one root.
    pub fn derive(root: u64) -> Self {
        let stream = SeedStream::new(root);
        Self {
            instance: stream.fork("instance").seed(),
            adversary: stream.fork("adversary").seed(),
            protocol: stream.fork("protocol").seed(),
        }
    }
}

/// Outcome of one protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trial {
    /// Wrong or missing messages (out of `n²`).
    pub errors: usize,
    /// Network rounds consumed.
    pub rounds: u64,
    /// Honest bits queued.
    pub bits_sent: u64,
    /// Corrupted (edge, round) slots used by the adversary.
    pub edges_corrupted: u64,
    /// Maximum faulty degree the adversary actually used in any round — by
    /// the model's enforcement, always `≤ ⌊αn⌋`.
    pub peak_fault_degree: usize,
}

/// Runs one trial of `proto` on a fresh network, deriving decorrelated
/// component seeds from `seed` (see [`TrialSeeds::derive`]).
///
/// # Errors
///
/// Propagates protocol parameter errors ([`CoreError`]).
pub fn run_trial(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seed: u64,
) -> Result<Trial, CoreError> {
    run_trial_seeded(
        proto,
        n,
        b,
        bandwidth,
        alpha,
        spec,
        TrialSeeds::derive(seed),
    )
}

/// Runs one trial with explicit per-component seeds.
///
/// # Errors
///
/// Propagates protocol parameter errors ([`CoreError`]).
pub fn run_trial_seeded(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seeds: TrialSeeds,
) -> Result<Trial, CoreError> {
    run_trial_seeded_traced(proto, n, b, bandwidth, alpha, spec, seeds, false)
        .map(|(trial, _)| trial)
}

/// Runs one trial, optionally recording the per-round stat deltas through a
/// [`RoundTrace`] observer on the session [`Driver`]. Observers never touch
/// protocol or adversary randomness, so the [`Trial`] fields are identical
/// with tracing on or off (the session-regression suite covers this).
///
/// # Errors
///
/// Propagates protocol parameter errors ([`CoreError`]).
#[allow(clippy::too_many_arguments)]
pub fn run_trial_seeded_traced(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seeds: TrialSeeds,
    trace: bool,
) -> Result<(Trial, Option<Vec<RoundDelta>>), CoreError> {
    run_trial_seeded_traced_on(
        proto,
        TopologySpec::Complete,
        n,
        b,
        bandwidth,
        alpha,
        spec,
        seeds,
        trace,
    )
}

/// [`run_trial_seeded_traced`] on an explicit topology. The clique path is
/// byte-for-byte the historical one ([`AllToAllInstance::random`] +
/// [`Network::new`]); sparse topologies mask the instance to the edge set
/// and open the network with [`Network::on_topology`], under the
/// degree-relative budget `⌊α·(deg(v)+1)⌋`.
///
/// # Errors
///
/// Propagates protocol parameter errors ([`CoreError`]), including
/// `Infeasible` from clique-only protocols on sparse graphs.
#[allow(clippy::too_many_arguments)]
pub fn run_trial_seeded_traced_on(
    proto: &dyn AllToAllProtocol,
    topology: TopologySpec,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seeds: TrialSeeds,
    trace: bool,
) -> Result<(Trial, Option<Vec<RoundDelta>>), CoreError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seeds.instance);
    let (inst, mut net) = if topology.is_complete() {
        let inst = AllToAllInstance::random(n, b, &mut rng);
        let net = Network::new(n, bandwidth, alpha, spec.build(seeds.adversary));
        (inst, net)
    } else {
        let topo = topology.build(n);
        let inst = AllToAllInstance::random_on(&topo, b, &mut rng);
        let net = Network::on_topology(topo, bandwidth, alpha, spec.build(seeds.adversary));
        (inst, net)
    };
    let (out, frames) = if trace {
        let mut tracer = RoundTrace::new();
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut tracer];
        let out = Driver::with_observers(&mut observers).run(proto, &mut net, &inst)?;
        (out, Some(tracer.frames))
    } else {
        (proto.run(&mut net, &inst)?, None)
    };
    let trial = Trial {
        errors: inst.count_errors(&out),
        rounds: net.rounds(),
        bits_sent: net.stats().bits_sent,
        edges_corrupted: net.stats().edges_corrupted,
        peak_fault_degree: net.stats().peak_fault_degree,
    };
    Ok((trial, frames))
}

/// Aggregates several trials of the same configuration.
///
/// The means are `None` — never `NaN`, and never a misleading `0.0` — when
/// no trial completed (all infeasible or failed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Number of trials.
    pub trials: usize,
    /// Trials that completed (ran to an output, with or without errors).
    pub completed: usize,
    /// Trials with zero errors.
    pub perfect: usize,
    /// Total errors across trials.
    pub total_errors: usize,
    /// Mean rounds over completed trials; `None` if none completed.
    pub mean_rounds: Option<f64>,
    /// Mean corrupted edge-slots per completed trial; `None` if none
    /// completed.
    pub mean_corrupted: Option<f64>,
    /// Mean honest bits queued per completed trial; `None` if none
    /// completed.
    pub mean_bits: Option<f64>,
    /// Maximum faulty degree the adversary used across all completed trials.
    pub max_fault_degree: usize,
    /// Infeasible-parameter failures.
    pub infeasible: usize,
    /// Trials that failed with any other protocol error (excluded from the
    /// means; nonzero here flags a configuration bug, not a protocol loss).
    pub failed: usize,
}

/// Runs `trials` trials **in parallel** and aggregates.
///
/// Trial `t` draws its root seed from `stream.fork_u64(t)` and then splits
/// it into independent instance/adversary/protocol seeds
/// ([`TrialSeeds::derive`]), so trials never share a random stream and
/// growing `trials` extends the seed sequence without reshuffling earlier
/// trials. Trials fan out across cores and the results are folded in trial
/// order, making the output bit-identical to [`aggregate_serial`] (covered
/// by a regression test).
// The argument list *is* the cell coordinate tuple; bundling it would just
// rename the same eight values.
#[allow(clippy::too_many_arguments)]
pub fn aggregate(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    trials: usize,
    stream: SeedStream,
) -> Aggregate {
    let results: Vec<Result<Trial, CoreError>> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let seeds = TrialSeeds::derive(stream.fork_u64(t as u64).seed());
            run_trial_seeded(proto, n, b, bandwidth, alpha, spec, seeds)
        })
        .collect();
    fold_trials(trials, results)
}

/// Serial reference implementation of [`aggregate`]: same seeds, same fold,
/// one thread. Kept public as the determinism oracle.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_serial(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    trials: usize,
    stream: SeedStream,
) -> Aggregate {
    let results: Vec<Result<Trial, CoreError>> = (0..trials)
        .map(|t| {
            let seeds = TrialSeeds::derive(stream.fork_u64(t as u64).seed());
            run_trial_seeded(proto, n, b, bandwidth, alpha, spec, seeds)
        })
        .collect();
    fold_trials(trials, results)
}

/// Folds per-trial results (in trial order) into an [`Aggregate`]. The fold
/// order is part of the determinism contract: floating-point means are
/// computed from integer sums, so any ordering of the same multiset of
/// results yields identical fields — but keeping input order makes that
/// trivially true. Public so oracle harnesses (e.g. the codeword-cache
/// identity test) can fold hand-run trials exactly like the engine does.
pub fn fold_trials(trials: usize, results: Vec<Result<Trial, CoreError>>) -> Aggregate {
    let mut agg = Aggregate {
        trials,
        ..Default::default()
    };
    let mut rounds_sum = 0u64;
    let mut corrupted_sum = 0u64;
    let mut bits_sum = 0u64;
    for result in results {
        match result {
            Ok(trial) => {
                agg.completed += 1;
                if trial.errors == 0 {
                    agg.perfect += 1;
                }
                agg.total_errors += trial.errors;
                rounds_sum += trial.rounds;
                corrupted_sum += trial.edges_corrupted;
                bits_sum += trial.bits_sent;
                agg.max_fault_degree = agg.max_fault_degree.max(trial.peak_fault_degree);
            }
            Err(CoreError::Infeasible { .. }) => agg.infeasible += 1,
            Err(_) => agg.failed += 1,
        }
    }
    if agg.completed > 0 {
        agg.mean_rounds = Some(rounds_sum as f64 / agg.completed as f64);
        agg.mean_corrupted = Some(corrupted_sum as f64 / agg.completed as f64);
        agg.mean_bits = Some(bits_sum as f64 / agg.completed as f64);
    }
    agg
}

/// A plain-text table printer for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a titled table with column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns. A table with no rows (e.g. a
    /// zero-trial or fully filtered scenario) still renders its header block
    /// rather than panicking or printing misleading placeholder rows.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let rule = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_core::protocols::NaiveExchange;

    #[test]
    fn trial_runs_fault_free() {
        let t = run_trial(&NaiveExchange, 8, 1, 9, 0.0, AdversarySpec::None, 1).unwrap();
        assert_eq!(t.errors, 0);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.peak_fault_degree, 0);
    }

    /// The two component seeds of one trial must never coincide — the old
    /// `seed` / `seed ^ 0xfeed` scheme handed the adversary the instance
    /// stream.
    #[test]
    fn trial_seeds_are_pairwise_distinct() {
        for root in [0u64, 1, 1000, u64::MAX] {
            let s = TrialSeeds::derive(root);
            assert_ne!(s.instance, s.adversary, "root {root}");
            assert_ne!(s.instance, s.protocol, "root {root}");
            assert_ne!(s.adversary, s.protocol, "root {root}");
        }
    }

    #[test]
    fn aggregate_counts_perfect_trials() {
        let stream = SeedStream::from_label("test:aggregate");
        let agg = aggregate(&NaiveExchange, 8, 1, 9, 0.0, AdversarySpec::None, 3, stream);
        assert_eq!(agg.perfect, 3);
        assert_eq!(agg.completed, 3);
        assert_eq!(agg.total_errors, 0);
    }

    /// The parallel fan-out must be invisible in the results: every field of
    /// the [`Aggregate`] is bit-identical to the serial fold for the same
    /// seed set, across clean and adversarial configurations.
    #[test]
    fn parallel_aggregate_is_bit_identical_to_serial() {
        use bdclique_core::protocols::DetSqrt;
        let configs: &[(AdversarySpec, f64)] = &[
            (AdversarySpec::None, 0.0),
            (AdversarySpec::GreedyFlip, 0.07),
            (AdversarySpec::RushingRandom, 0.07),
            (AdversarySpec::RandomMatchingsFlip, 0.07),
        ];
        for &(spec, alpha) in configs {
            let stream = SeedStream::from_label("test:par-vs-serial");
            let par = aggregate(&DetSqrt::default(), 16, 1, 9, alpha, spec, 8, stream);
            let ser = aggregate_serial(&DetSqrt::default(), 16, 1, 9, alpha, spec, 8, stream);
            assert_eq!(
                par, ser,
                "spec {spec:?} diverged between parallel and serial"
            );
            // f64 equality above is exact; double-check the bit patterns to
            // rule out a PartialEq that tolerates representation drift.
            assert_eq!(
                par.mean_rounds.map(f64::to_bits),
                ser.mean_rounds.map(f64::to_bits)
            );
            assert_eq!(
                par.mean_corrupted.map(f64::to_bits),
                ser.mean_corrupted.map(f64::to_bits)
            );
        }
    }

    /// An all-infeasible cell must keep its means well-defined (`None`), not
    /// `NaN`, `0/0`, or a misleading `0.0`.
    #[test]
    fn all_infeasible_fold_has_no_means() {
        let results: Vec<Result<Trial, CoreError>> = (0..3)
            .map(|i| {
                Err(CoreError::Infeasible {
                    reason: format!("trial {i}"),
                })
            })
            .collect();
        let agg = fold_trials(3, results);
        assert_eq!(agg.trials, 3);
        assert_eq!(agg.infeasible, 3);
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.mean_rounds, None);
        assert_eq!(agg.mean_corrupted, None);
        assert_eq!(agg.mean_bits, None);
    }

    #[test]
    fn empty_fold_is_well_defined_too() {
        let agg = fold_trials(0, Vec::new());
        assert_eq!(agg.trials, 0);
        assert_eq!(agg.mean_rounds, None);
        assert_eq!(agg.perfect, 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
    }

    #[test]
    fn adversary_specs_build() {
        for spec in [
            AdversarySpec::None,
            AdversarySpec::RandomMatchingsFlip,
            AdversarySpec::RotatingMatchingFlip,
            AdversarySpec::RelayHunter(0, 1),
            AdversarySpec::BurstFlip {
                period: 8,
                burst: 2,
            },
            AdversarySpec::PhasedFlip {
                period: 6,
                split: 3,
            },
            AdversarySpec::GreedyFlip,
            AdversarySpec::TargetNodeFlip(2),
            AdversarySpec::RushingRandom,
            AdversarySpec::Eclipse {
                target: 1,
                rounds: 4,
            },
            AdversarySpec::Partition { cut_seed: 9 },
        ] {
            let _ = spec.build(7);
            assert!(!spec.name().is_empty());
        }
        assert_eq!(
            AdversarySpec::Eclipse {
                target: 1,
                rounds: 4
            }
            .key(),
            "nbd-eclipse(1,4)"
        );
        assert_eq!(
            AdversarySpec::Partition { cut_seed: 9 }.key(),
            "nbd-partition(9)"
        );
    }

    /// Sparse trials run end to end: a fault-free naive exchange on a random
    /// regular graph delivers every neighbor message (masked instances hold
    /// zeros elsewhere), and an eclipse at `α = 0.9` on the same graph
    /// corrupts — the budget `⌊0.9·9⌋ = 8` covers the full degree.
    #[test]
    fn sparse_trial_runs_on_random_regular() {
        let topo = TopologySpec::RandomRegular { d: 8, seed: 21 };
        let seeds = TrialSeeds::derive(3);
        let (clean, _) = run_trial_seeded_traced_on(
            &NaiveExchange,
            topo,
            32,
            2,
            18,
            0.0,
            AdversarySpec::None,
            seeds,
            false,
        )
        .unwrap();
        assert_eq!(clean.errors, 0);
        assert_eq!(clean.rounds, 1);
        let (eclipsed, _) = run_trial_seeded_traced_on(
            &NaiveExchange,
            topo,
            32,
            2,
            18,
            0.9,
            AdversarySpec::Eclipse {
                target: 0,
                rounds: 64,
            },
            seeds,
            false,
        )
        .unwrap();
        assert!(eclipsed.edges_corrupted > 0, "eclipse must close on d=8");
        assert!(eclipsed.errors > 0);
    }

    /// Clique-only protocols report `Infeasible` (not an error) on sparse
    /// topologies, so grid cells fold them into the `infeasible` column.
    #[test]
    fn clique_only_protocol_is_infeasible_on_sparse() {
        use bdclique_core::protocols::DetSqrt;
        let err = run_trial_seeded_traced_on(
            &DetSqrt::default(),
            TopologySpec::RandomRegular { d: 8, seed: 21 },
            16,
            1,
            9,
            0.0,
            AdversarySpec::None,
            TrialSeeds::derive(4),
            false,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn topology_spec_keys_and_builds() {
        assert!(TopologySpec::Complete.is_complete());
        assert_eq!(TopologySpec::Complete.key(), "complete");
        assert_eq!(TopologySpec::Hypercube.key(), "hypercube");
        assert_eq!(
            TopologySpec::RandomRegular { d: 8, seed: 7 }.key(),
            "random-regular(d=8,seed=7)"
        );
        assert_eq!(TopologySpec::Hypercube.build(16).max_degree(), 4);
        let rr = TopologySpec::RandomRegular { d: 4, seed: 7 }.build(16);
        assert!((0..16).all(|v| rr.degree(v) == 4));
    }

    /// A burst adversary corrupts only inside its windows, and the trace
    /// plumbed through the traced trial runner shows exactly that shape.
    #[test]
    fn traced_trial_sees_burst_windows() {
        use bdclique_core::protocols::RelayReplication;
        let spec = AdversarySpec::BurstFlip {
            period: 3,
            burst: 1,
        };
        let seeds = TrialSeeds::derive(5);
        let (trial, frames) = run_trial_seeded_traced(
            &RelayReplication { copies: 3 },
            16,
            2,
            9,
            0.25,
            spec,
            seeds,
            true,
        )
        .unwrap();
        let frames = frames.expect("trace requested");
        assert_eq!(frames.len() as u64, trial.rounds);
        for frame in &frames {
            let active = frame.round % 3 == 0;
            assert_eq!(
                frame.stats.edges_corrupted > 0,
                active,
                "round {}: burst gating must shape the per-round corruption",
                frame.round
            );
        }
        // Tracing must not perturb the trial outcome.
        let untracked =
            run_trial_seeded(&RelayReplication { copies: 3 }, 16, 2, 9, 0.25, spec, seeds).unwrap();
        assert_eq!(trial, untracked);
    }
}
