//! The communication graph: which node pairs share a link.
//!
//! The paper's model is the complete network `K_n`, and every layer of the
//! simulator historically assumed all-pairs connectivity. [`Topology`] makes
//! the graph explicit: a [`Network`](crate::Network) owns one, honest
//! traffic is validated against its edge set, and the adversary's degree
//! budget becomes *topology-relative* — `⌊α·(deg(v)+1)⌋` faulty edges per
//! node per round, which on the clique (`deg(v)+1 = n`) is exactly the
//! paper's `⌊αn⌋`.
//!
//! # Representations
//!
//! The clique is stored as a marker (`O(1)` memory at any `n`, and the
//! `K_n` fast paths throughout the simulator key off
//! [`Topology::is_complete`]); every other graph stores sorted adjacency
//! rows (`O(edges)` memory, ascending deterministic iteration — the same
//! discipline as the sparse [`Traffic`](crate::Traffic) backend). Sparse
//! topologies may additionally cap individual edges below the network-wide
//! bandwidth `B` ([`Topology::with_edge_cap`]).
//!
//! # Generators
//!
//! All generators are pure functions of their parameters (and, for the
//! randomized ones, a `u64` seed threaded through [`SeedStream`] forks), so
//! a topology is reproducible from its cell coordinates exactly like every
//! other random component of a trial. The randomized generators retry
//! (deterministically) until the sampled graph is simple and connected.

use crate::seed::SeedStream;
use bdclique_snapshot::{Dec, Enc, SnapError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An undirected communication graph on `n` nodes.
///
/// Cheap to share: `Network` and `Traffic` hold it behind an [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// `K_n`: every pair is an edge. No adjacency storage.
    Complete,
    /// Anything else: sorted ascending adjacency rows.
    Sparse {
        adj: Vec<Vec<u32>>,
        edge_count: usize,
        max_degree: usize,
        /// Per-edge bandwidth caps (bits per round, normalized keys
        /// `u < v`); edges absent here carry the network-wide `B`.
        caps: BTreeMap<(u32, u32), u32>,
    },
}

impl Topology {
    /// The complete graph `K_n` — the paper's model and the default for
    /// [`Network::new`](crate::Network::new).
    #[must_use]
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "topology needs at least 2 nodes");
        Self {
            n,
            repr: Repr::Complete,
        }
    }

    /// Builds a sparse topology from an explicit edge list. Self-loops are
    /// rejected; duplicate and reversed pairs collapse to one undirected
    /// edge.
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        assert!(n >= 2, "topology needs at least 2 nodes");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for n = {n}");
            assert_ne!(a, b, "self-loop ({a}, {a}) rejected");
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        let mut edge_count = 0;
        let mut max_degree = 0;
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
            edge_count += row.len();
            max_degree = max_degree.max(row.len());
        }
        Self {
            n,
            repr: Repr::Sparse {
                adj,
                edge_count: edge_count / 2,
                max_degree,
                caps: BTreeMap::new(),
            },
        }
    }

    /// Caps one edge's bandwidth below the network-wide `B` (bits per
    /// round). Only meaningful on sparse topologies; the edge must exist.
    #[must_use]
    pub fn with_edge_cap(mut self, u: usize, v: usize, bits: usize) -> Self {
        assert!(self.contains(u, v), "({u}, {v}) is not an edge");
        assert!(bits > 0, "edge cap must be positive");
        match &mut self.repr {
            Repr::Complete => panic!("per-edge caps require a sparse topology"),
            Repr::Sparse { caps, .. } => {
                let key = (u.min(v) as u32, u.max(v) as u32);
                caps.insert(key, bits as u32);
            }
        }
        self
    }

    /// The edge's bandwidth cap in bits per round, if one was set with
    /// [`Topology::with_edge_cap`].
    #[must_use]
    pub fn edge_cap(&self, u: usize, v: usize) -> Option<usize> {
        match &self.repr {
            Repr::Complete => None,
            Repr::Sparse { caps, .. } => {
                if caps.is_empty() {
                    return None; // common case: no per-edge caps at all
                }
                let key = (u.min(v) as u32, u.max(v) as u32);
                caps.get(&key).map(|&bits| bits as usize)
            }
        }
    }

    // ---- generators ----

    /// The `log2(n)`-dimensional hypercube: `n` must be a power of two,
    /// `u ~ u ^ 2^i` for every bit `i`. Degree `log2 n`; the native graph
    /// of the Theorem 1.4 protocol's iteration structure.
    #[must_use]
    pub fn hypercube(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "hypercube needs n = 2^l >= 2"
        );
        let ell = n.trailing_zeros() as usize;
        Self::from_edges(
            n,
            (0..n).flat_map(move |u| (0..ell).map(move |i| (u, u ^ (1 << i)))),
        )
    }

    /// The cycle `C_n`: `u ~ u ± 1 (mod n)`. Degree 2.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        Self::from_edges(n, (0..n).map(|u| (u, (u + 1) % n)))
    }

    /// The 2D torus (`rows × cols` grid with wraparound). Degree ≤ 4
    /// (duplicate wrap edges on 2-wide dimensions collapse).
    #[must_use]
    pub fn torus2d(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "torus needs both dimensions >= 2");
        let at = move |r: usize, c: usize| r * cols + c;
        Self::from_edges(
            rows * cols,
            (0..rows).flat_map(move |r| {
                (0..cols).flat_map(move |c| {
                    [
                        (at(r, c), at((r + 1) % rows, c)),
                        (at(r, c), at(r, (c + 1) % cols)),
                    ]
                })
            }),
        )
    }

    /// A random simple connected `d`-regular graph — the constant-degree
    /// expander ensemble. Built by randomizing a deterministic `d`-regular
    /// circulant lattice with uniform double-edge swaps (each swap
    /// preserves regularity and simplicity, so the sampler always
    /// terminates, unlike naive configuration-model rejection), retrying
    /// deterministically in `seed` until the result is connected.
    /// Requires `n·d` even and `d < n`.
    #[must_use]
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(d >= 1 && d < n, "degree must be in 1..n");
        assert!((n * d).is_multiple_of(2), "n * d must be even");
        let stream = SeedStream::new(seed).fork("random-regular");
        // The starting lattice: rings at strides 1..=d/2, plus the
        // antipodal matching for odd d (n·d even forces n even there).
        let mut base: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
        for j in 1..=d / 2 {
            for u in 0..n {
                base.push((u, (u + j) % n));
            }
        }
        if d % 2 == 1 {
            for u in 0..n / 2 {
                base.push((u, u + n / 2));
            }
        }
        for attempt in 0..10_000u64 {
            let mut rng = Rng64::new(stream.fork_u64(attempt).seed());
            let mut edges = base.clone();
            let mut present: std::collections::HashSet<(usize, usize)> =
                edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            let m = edges.len();
            let (mut swaps, mut tries) = (0usize, 0usize);
            while swaps < 10 * m && tries < 100 * m {
                tries += 1;
                let (i, j) = (rng.below(m), rng.below(m));
                if i == j {
                    continue;
                }
                let (a, b) = edges[i];
                let (c, e) = edges[j];
                // Uniformly orient the rewiring of {a,b} + {c,e}.
                let ((p, q), (r, s)) = if rng.below(2) == 0 {
                    ((a, c), (b, e))
                } else {
                    ((a, e), (b, c))
                };
                if p == q || r == s {
                    continue;
                }
                let k1 = (p.min(q), p.max(q));
                let k2 = (r.min(s), r.max(s));
                if k1 == k2 || present.contains(&k1) || present.contains(&k2) {
                    continue;
                }
                present.remove(&(a.min(b), a.max(b)));
                present.remove(&(c.min(e), c.max(e)));
                present.insert(k1);
                present.insert(k2);
                edges[i] = (p, q);
                edges[j] = (r, s);
                swaps += 1;
            }
            let topo = Self::from_edges(n, edges);
            if topo.is_connected() {
                return topo;
            }
        }
        panic!("random_regular(n = {n}, d = {d}) failed to sample a connected graph");
    }

    /// A Watts–Strogatz small world: a ring lattice where every node links
    /// its `k` nearest neighbours on each side, with each edge rewired to a
    /// uniform endpoint with probability 10% — resampled (deterministically
    /// in `seed`) until connected. Requires `1 ≤ k` and `2k + 1 ≤ n`.
    #[must_use]
    pub fn small_world(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 1 && 2 * k < n, "small world needs 1 <= k and 2k < n");
        let stream = SeedStream::new(seed).fork("small-world");
        for attempt in 0..10_000u64 {
            let mut rng = Rng64::new(stream.fork_u64(attempt).seed());
            let mut edges: Vec<(usize, usize)> = (0..n)
                .flat_map(|u| (1..=k).map(move |j| (u, (u + j) % n)))
                .collect();
            let mut present: std::collections::HashSet<(usize, usize)> =
                edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            for edge in edges.iter_mut() {
                if rng.below(10) != 0 {
                    continue; // keep with probability 90%
                }
                let (u, old) = *edge;
                let mut w = rng.below(n);
                let mut tries = 0;
                while (w == u || present.contains(&(u.min(w), u.max(w)))) && tries < 4 * n {
                    w = rng.below(n);
                    tries += 1;
                }
                if w == u || present.contains(&(u.min(w), u.max(w))) {
                    continue; // node saturated: keep the lattice edge
                }
                present.remove(&(u.min(old), u.max(old)));
                present.insert((u.min(w), u.max(w)));
                *edge = (u, w);
            }
            let topo = Self::from_edges(n, edges);
            if topo.is_connected() {
                return topo;
            }
        }
        panic!("small_world(n = {n}, k = {k}) failed to sample a connected graph");
    }

    /// A scale-free graph via seeded preferential attachment
    /// (Barabási–Albert): nodes join one at a time and attach `m` edges to
    /// existing nodes sampled proportionally to their current degree, so
    /// early nodes become hubs and the degree distribution is heavy-tailed.
    /// Resampled (deterministically in `seed`) until simple and connected,
    /// like [`Topology::random_regular`]. Requires `1 ≤ m < n`.
    #[must_use]
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Self {
        assert!(m >= 1 && m < n, "attachment degree must be in 1..n");
        let stream = SeedStream::new(seed).fork("scale-free");
        for attempt in 0..10_000u64 {
            let mut rng = Rng64::new(stream.fork_u64(attempt).seed());
            // Seed core: a clique on the first m + 1 nodes, so every
            // arrival has m distinct attachment targets available.
            let mut edges: Vec<(usize, usize)> = (0..=m)
                .flat_map(|u| (u + 1..=m).map(move |v| (u, v)))
                .collect();
            // Degree-proportional sampling by drawing a uniform edge
            // endpoint: each node appears in `targets` once per incident
            // edge, the classic O(1)-per-draw preferential attachment.
            let mut targets: Vec<usize> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
            for u in m + 1..n {
                let mut chosen = Vec::with_capacity(m);
                let mut tries = 0;
                while chosen.len() < m && tries < 100 * (m + 1) {
                    tries += 1;
                    let v = targets[rng.below(targets.len())];
                    if !chosen.contains(&v) {
                        chosen.push(v);
                    }
                }
                if chosen.len() < m {
                    break; // resample the whole graph on the next attempt
                }
                for &v in &chosen {
                    edges.push((u, v));
                    targets.push(u);
                    targets.push(v);
                }
            }
            if edges.len() < m * (m + 1) / 2 + (n - m - 1) * m {
                continue;
            }
            let topo = Self::from_edges(n, edges);
            if topo.is_connected() {
                return topo;
            }
        }
        panic!("scale_free(n = {n}, m = {m}) failed to sample a connected graph");
    }

    // ---- accessors ----

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` exactly for [`Topology::complete`] — the `K_n` fast paths
    /// (and every bit-compatibility guarantee with the pre-topology
    /// simulator) key off this.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self.repr, Repr::Complete)
    }

    /// Whether `(u, v)` is an edge. Self-pairs are never edges.
    #[must_use]
    pub fn contains(&self, u: usize, v: usize) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        match &self.repr {
            Repr::Complete => true,
            Repr::Sparse { adj, .. } => adj[u].binary_search(&(v as u32)).is_ok(),
        }
    }

    /// Degree of `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        assert!(v < self.n, "node {v} out of range");
        match &self.repr {
            Repr::Complete => self.n - 1,
            Repr::Sparse { adj, .. } => adj[v].len(),
        }
    }

    /// Maximum degree over all nodes.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        match &self.repr {
            Repr::Complete => self.n - 1,
            Repr::Sparse { max_degree, .. } => *max_degree,
        }
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        match &self.repr {
            Repr::Complete => self.n * (self.n - 1) / 2,
            Repr::Sparse { edge_count, .. } => *edge_count,
        }
    }

    /// The neighbours of `u`, ascending. On the clique this is
    /// `0..n` minus `u` — the exact iteration order of the historical
    /// all-pairs loops, which is what keeps protocols that switched to
    /// neighbourhood iteration bit-identical on `K_n`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(u < self.n, "node {u} out of range");
        let (complete_range, sparse_row): (Option<std::ops::Range<usize>>, &[u32]) =
            match &self.repr {
                Repr::Complete => (Some(0..self.n), &[]),
                Repr::Sparse { adj, .. } => (None, &adj[u]),
            };
        complete_range
            .into_iter()
            .flatten()
            .filter(move |&v| v != u)
            .chain(sparse_row.iter().map(|&v| v as usize))
    }

    /// All undirected edges, normalized `u < v`, in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The mobile adversary's per-round faulty-degree budget at `v`:
    /// `⌊α·(deg(v)+1)⌋`. On the clique `deg(v)+1 = n`, so this is exactly
    /// the paper's `⌊αn⌋` for every node.
    #[must_use]
    pub fn budget_of(&self, v: usize, alpha: f64) -> usize {
        (alpha * (self.degree(v) + 1) as f64).floor() as usize
    }

    /// Whether the graph is connected (BFS from node 0).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.is_complete() {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.n
    }

    /// Shared handle, for threading one topology through `Network`,
    /// `Traffic`, and adversary scopes without copies.
    #[must_use]
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Serializes the graph: the clique as its `O(1)` marker, sparse graphs
    /// as the ascending normalized edge list plus per-edge caps.
    pub fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.n);
        match &self.repr {
            Repr::Complete => enc.put_u8(0),
            Repr::Sparse { caps, .. } => {
                enc.put_u8(1);
                enc.put_usize(self.edge_count());
                for (u, v) in self.edges() {
                    enc.put_u32(u as u32);
                    enc.put_u32(v as u32);
                }
                enc.put_usize(caps.len());
                for (&(u, v), &bits) in caps {
                    enc.put_u32(u);
                    enc.put_u32(v);
                    enc.put_u32(bits);
                }
            }
        }
    }

    /// Rebuilds a topology serialized by [`Topology::snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        // Same node ceiling as the frame-store decoders: `complete(n)` and
        // `from_edges` allocate n-sized tables, so n must be bounded before
        // either runs — a corrupt varint must not turn into a huge
        // allocation.
        const MAX_NODES: usize = 1 << 17;
        let n = dec.get_usize()?;
        if !(2..=MAX_NODES).contains(&n) {
            return Err(SnapError::corrupt(format!("topology n = {n} out of range")));
        }
        match dec.get_u8()? {
            0 => Ok(Self::complete(n)),
            1 => {
                let edge_count = dec.get_len(8)?;
                let mut edges = Vec::with_capacity(edge_count);
                for _ in 0..edge_count {
                    let u = dec.get_u32()? as usize;
                    let v = dec.get_u32()? as usize;
                    if u >= v || v >= n {
                        return Err(SnapError::corrupt(format!(
                            "topology edge ({u}, {v}) not normalized for n = {n}"
                        )));
                    }
                    edges.push((u, v));
                }
                let mut topo = Self::from_edges(n, edges);
                let cap_count = dec.get_len(12)?;
                for _ in 0..cap_count {
                    let u = dec.get_u32()? as usize;
                    let v = dec.get_u32()? as usize;
                    let bits = dec.get_u32()? as usize;
                    if !topo.contains(u, v) || bits == 0 {
                        return Err(SnapError::corrupt("topology edge cap invalid"));
                    }
                    topo = topo.with_edge_cap(u, v, bits);
                }
                Ok(topo)
            }
            t => Err(SnapError::corrupt(format!("topology tag {t}"))),
        }
    }
}

/// A tiny splitmix64-counter RNG for the graph generators — netsim has no
/// RNG dependency, and the generators only need uniform indices.
struct Rng64 {
    state: u64,
}

impl Rng64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        crate::seed::splitmix64(self.state)
    }

    /// Uniform in `0..n` (modulo bias is irrelevant at simulation scales).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_is_all_pairs() {
        let t = Topology::complete(5);
        assert!(t.is_complete());
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.degree(3), 4);
        assert!(t.contains(0, 4) && !t.contains(2, 2));
        let nb: Vec<usize> = t.neighbors(2).collect();
        assert_eq!(nb, vec![0, 1, 3, 4]);
        assert_eq!(t.budget_of(0, 0.25), 1); // ⌊0.25·5⌋ = ⌊αn⌋
    }

    #[test]
    fn from_edges_normalizes() {
        let t = Topology::from_edges(4, [(0, 1), (1, 0), (2, 3), (0, 1)]);
        assert!(!t.is_complete());
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.degree(1), 1);
        assert!(t.contains(1, 0));
        assert!(!t.contains(0, 2));
        assert!(!t.is_connected());
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn hypercube_shape() {
        let t = Topology::hypercube(8);
        assert_eq!(t.edge_count(), 12);
        for v in 0..8 {
            assert_eq!(t.degree(v), 3);
        }
        assert!(t.contains(0b000, 0b100) && !t.contains(0b000, 0b011));
        assert!(t.is_connected());
    }

    #[test]
    fn ring_and_torus_shape() {
        let r = Topology::ring(6);
        assert_eq!(r.edge_count(), 6);
        assert!(r.contains(5, 0) && !r.contains(0, 2));
        let t = Topology::torus2d(3, 4);
        assert_eq!(t.n(), 12);
        for v in 0..12 {
            assert_eq!(t.degree(v), 4);
        }
        assert!(t.is_connected());
        // 2-wide dimension: wrap edges collapse, degree drops to 3.
        let narrow = Topology::torus2d(2, 4);
        assert_eq!(narrow.degree(0), 3);
    }

    #[test]
    fn random_regular_is_regular_connected_and_seeded() {
        let a = Topology::random_regular(16, 4, 7);
        let b = Topology::random_regular(16, 4, 7);
        assert_eq!(a, b, "same seed must reproduce the same graph");
        for v in 0..16 {
            assert_eq!(a.degree(v), 4);
        }
        assert!(a.is_connected());
        assert_ne!(a, Topology::random_regular(16, 4, 8));
    }

    #[test]
    fn small_world_is_connected_and_seeded() {
        let a = Topology::small_world(24, 2, 3);
        assert_eq!(a, Topology::small_world(24, 2, 3));
        assert!(a.is_connected());
        // Degrees stay near 2k; total degree is exactly preserved by
        // rewiring (each rewire moves one endpoint).
        let total: usize = (0..24).map(|v| a.degree(v)).sum();
        assert_eq!(total, 2 * a.edge_count());
    }

    #[test]
    fn edge_caps() {
        let t = Topology::from_edges(4, [(0, 1), (1, 2)]).with_edge_cap(0, 1, 5);
        assert_eq!(t.edge_cap(1, 0), Some(5));
        assert_eq!(t.edge_cap(1, 2), None);
    }

    #[test]
    fn degree_relative_budget() {
        let t = Topology::from_edges(4, [(0, 1), (0, 2), (0, 3)]); // star
        assert_eq!(t.budget_of(0, 0.5), 2); // ⌊0.5·4⌋
        assert_eq!(t.budget_of(1, 0.5), 1); // ⌊0.5·2⌋
        assert_eq!(t.budget_of(1, 0.4), 0);
    }
}
