//! Quickstart: run every Table 1 protocol once against an adaptive
//! greedy adversary and print a verdict line per protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bdclique::adversary::adaptive::GreedyLoad;
use bdclique::adversary::Payload;
use bdclique::core::protocols::run_and_score;
use bdclique::core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication,
};
use bdclique::core::AllToAllInstance;
use bdclique::netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 16;
    let b = 1;
    let alpha = 0.07; // one corrupted edge per node per round at n = 16
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let inst = AllToAllInstance::random(n, b, &mut rng);

    let protocols: Vec<Box<dyn AllToAllProtocol>> = vec![
        Box::new(NaiveExchange),
        Box::new(RelayReplication { copies: 3 }),
        Box::new(NonAdaptiveAllToAll::default()),
        Box::new(DetSqrt::default()),
        Box::new(DetHypercube::default()),
        Box::new(AdaptiveTakeOne {
            line_capacity: 1,
            ..Default::default()
        }),
        Box::new(AdaptiveAllToAll {
            line_capacity: 1,
            ..Default::default()
        }),
    ];

    println!("n = {n}, B = 9 bits, alpha = {alpha} (budget = 1 edge/node/round)");
    println!("adversary: adaptive greedy bit-flipper\n");
    println!(
        "{:<30} {:>8} {:>8} {:>12} {:>10}",
        "protocol", "errors", "rounds", "bits sent", "corrupted"
    );
    for proto in &protocols {
        let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 7));
        let mut net = Network::new(n, 9, alpha, adversary);
        match run_and_score(proto.as_ref(), &mut net, &inst) {
            Ok(outcome) => println!(
                "{:<30} {:>8} {:>8} {:>12} {:>10}",
                outcome.protocol,
                outcome.errors,
                outcome.rounds,
                outcome.bits_sent,
                outcome.edges_corrupted
            ),
            Err(e) => println!("{:<30} error: {e}", proto.name()),
        }
    }
    println!(
        "\nThe unprotected baselines lose messages; every compiler of the\n\
         paper (rows 3-7) delivers all {} messages despite the adversary.",
        n * n
    );
}
