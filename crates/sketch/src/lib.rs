//! k-sparse recovery sketches (Lemma 2.3 / Lemma 2.4 of the paper).
//!
//! A sketch is a succinct linear summary of a multiset of `(key, frequency)`
//! pairs supporting:
//!
//! * [`RecoverySketch::add`] — change a key's frequency by any signed amount,
//! * [`RecoverySketch::merge`] — cell-wise combination of two sketches built
//!   with the same shared randomness (linearity),
//! * [`RecoverySketch::recover`] — list every key with non-zero net
//!   frequency, provided there are at most ~`capacity` of them.
//!
//! The construction is the standard peeling structure (an invertible lookup
//! table à la Cormode–Firmani, the paper's reference \[21\]): `rows` hash rows
//! of `cols` cells, each cell carrying `(count, key_sum, check_sum)` where
//! `check_sum` is keyed by a polynomial hash over the Mersenne-61 field.
//! The compilers use it exactly as Lemma 2.4 prescribes: add every intended
//! message with frequency `+1`, subtract every received message with
//! frequency `-1`, and recover — what remains is the set of corrupted
//! messages together with their corrections.
//!
//! Serialization is *fixed width* ([`SketchShape::bit_len`]); the adaptive
//! compiler relies on every sketch occupying exactly `t` bits (its Eq. (7)).

mod cell;
mod sketch;

pub use cell::Cell;
pub use sketch::{RecoverySketch, SketchError, SketchShape};
