//! The static-fault-tolerance baseline: replication over relay paths with
//! majority voting.
//!
//! This embodies the classical approach the paper's introduction contrasts
//! with: route each message over `R` disjoint two-hop relay paths and take a
//! majority. Against a *static* adversary controlling fewer than `⌈R/2⌉`
//! well-placed edges per pair this is perfect — but a *mobile* adversary of
//! faulty degree **one** (the rotating matching, α = 1/n) can poison a
//! different relay hop every round and defeat any replication factor on
//! targeted pairs. Experiment `F.MATCH` measures exactly this.

use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use bdclique_bits::BitVec;
use bdclique_netsim::{Delivery, Network, Topology};
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;
use std::sync::Arc;

/// Replication over `R` two-hop relay paths, with per-message majority.
///
/// Copy `i` of `m_{u,v}` travels `u → c_i(u,v) → v` with
/// `c_i(u,v) = (u + v + h_i) mod n` for distinct shifts `h_i`; for fixed `i`
/// the relay map is a bijection in each coordinate, so every copy wave costs
/// exactly two rounds of full-mesh traffic.
#[derive(Debug, Clone, Copy)]
pub struct RelayReplication {
    /// Number of relay copies (odd; majority threshold `⌈R/2⌉`).
    pub copies: usize,
}

impl Default for RelayReplication {
    fn default() -> Self {
        Self { copies: 3 }
    }
}

/// Within one copy wave, which hop runs next.
enum RelayPhase {
    /// Hop 1: `u → c_i(u, v)`.
    Hop1,
    /// Hop 2: `c → v`, forwarding what hop 1 delivered (`d1`) plus the
    /// relay-was-sender copies kept locally.
    Hop2 {
        d1: Delivery,
        local: Vec<Option<(usize, BitVec)>>,
    },
}

/// The replication baseline as a state machine: two steps (hops) per copy.
struct RelaySession<'a> {
    inst: &'a AllToAllInstance,
    copies: usize,
    n: usize,
    b: usize,
    /// Current copy index `i`.
    i: usize,
    phase: RelayPhase,
    votes: Vec<Vec<Vec<BitVec>>>,
    /// `Some` on a sparse topology: the arithmetic relay bijection needs the
    /// clique, so replication degrades to *time* replication — each copy is
    /// one direct round over the graph's edges, and the majority is taken
    /// over rounds instead of relay paths.
    topo: Option<Arc<Topology>>,
}

impl<'a> RelaySession<'a> {
    fn new(
        proto: &RelayReplication,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        if proto.copies == 0 || proto.copies >= n {
            return Err(CoreError::invalid("copies must be in 1..n"));
        }
        let b = inst.b();
        if b > net.bandwidth() {
            return Err(CoreError::invalid("message wider than bandwidth"));
        }
        Ok(Self {
            inst,
            copies: proto.copies,
            n,
            b,
            i: 0,
            phase: RelayPhase::Hop1,
            votes: vec![vec![Vec::new(); n]; n],
            topo: (!net.topology().is_complete()).then(|| net.topology_handle()),
        })
    }

    /// Rebuilds a session serialized by its `ProtocolSession::snapshot`:
    /// the structural fields come back from `new`, then the copy cursor,
    /// mid-copy phase, and vote tallies are overlaid.
    fn restore(
        proto: &RelayReplication,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let mut s = Self::new(proto, net, inst)?;
        s.i = dec.get_usize().map_err(CoreError::from)?;
        if s.i >= s.copies {
            return Err(CoreError::invalid("relay snapshot cursor out of range"));
        }
        s.phase = match dec.get_u8().map_err(CoreError::from)? {
            0 => RelayPhase::Hop1,
            1 => {
                let d1 = Delivery::restore(dec).map_err(CoreError::from)?;
                if d1.n() != s.n {
                    return Err(CoreError::invalid("relay snapshot delivery size mismatch"));
                }
                let local = dec
                    .get_seq(1, |d| d.get_opt(|d| Ok((d.get_usize()?, d.get_bits()?))))
                    .map_err(CoreError::from)?;
                if local.len() != s.n {
                    return Err(CoreError::invalid(
                        "relay snapshot local table size mismatch",
                    ));
                }
                RelayPhase::Hop2 { d1, local }
            }
            _ => return Err(CoreError::invalid("unknown relay phase tag")),
        };
        for row in &mut s.votes {
            for cell in row.iter_mut() {
                *cell = dec.get_seq(1, Dec::get_bits).map_err(CoreError::from)?;
            }
        }
        Ok(s)
    }

    /// Majority per message.
    fn finish(&mut self) -> AllToAllOutput {
        let (n, b) = (self.n, self.b);
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            for u in 0..n {
                if u == v {
                    out.set(v, u, self.inst.message(u, u).clone());
                    continue;
                }
                if let Some(topo) = &self.topo {
                    if !topo.contains(u, v) {
                        // Non-adjacent pair: the zero message by convention
                        // (masked instances hold zeros off the edge set).
                        out.set(v, u, BitVec::zeros(b));
                        continue;
                    }
                }
                let mut tally: Vec<(BitVec, usize)> = Vec::new();
                for m in &self.votes[v][u] {
                    let mut normalized = m.clone();
                    normalized.pad_to(b);
                    normalized.truncate(b);
                    match tally.iter_mut().find(|(x, _)| *x == normalized) {
                        Some((_, c)) => *c += 1,
                        None => tally.push((normalized, 1)),
                    }
                }
                tally.sort_by_key(|t| std::cmp::Reverse(t.1));
                if let Some((winner, _)) = tally.first() {
                    out.set(v, u, winner.clone());
                }
            }
        }
        out
    }
}

impl ProtocolSession for RelaySession<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        if self.i >= self.copies {
            return Err(CoreError::invalid("session stepped after completion"));
        }
        let n = self.n;
        if let Some(topo) = self.topo.clone() {
            // Sparse mode: one direct round per copy over the real edges.
            let mut traffic = net.traffic();
            for u in 0..n {
                for v in topo.neighbors(u) {
                    traffic.send(u, v, self.inst.message(u, v).clone());
                }
            }
            let d = net.exchange(traffic);
            for (v, inbox) in d.into_inboxes().into_iter().enumerate() {
                for (u, m) in inbox {
                    self.votes[v][u as usize].push(m);
                }
            }
            self.i += 1;
            if self.i == self.copies {
                return Ok(Step::Done(self.finish()));
            }
            return Ok(Step::Running);
        }
        let h = 1 + self.i; // distinct deterministic shifts
        match std::mem::replace(&mut self.phase, RelayPhase::Hop1) {
            RelayPhase::Hop1 => {
                let relay = |u: usize, v: usize| (u + v + h) % n;
                // Hop 1: u -> c_i(u, v).
                let mut traffic = net.traffic();
                let mut local: Vec<Option<(usize, BitVec)>> = vec![None; n]; // relay == u
                for u in 0..n {
                    for v in 0..n {
                        if u == v {
                            continue;
                        }
                        let c = relay(u, v);
                        if c == u {
                            local[u] = Some((v, self.inst.message(u, v).clone()));
                        } else {
                            traffic.send(u, c, self.inst.message(u, v).clone());
                        }
                    }
                }
                let d1 = net.exchange(traffic);
                self.phase = RelayPhase::Hop2 { d1, local };
                Ok(Step::Running)
            }
            RelayPhase::Hop2 { d1, mut local } => {
                // Hop 2: c -> v. Relay w received the copy from u destined
                // to v where w = (u + v + h) mod n; for each sender u the
                // target is v = (w - u - h) mod n. Forwarding walks each
                // relay's inbox and moves the frames on — O(received
                // frames), no clones, no n² probe sweep.
                let mut traffic = net.traffic();
                for (w, inbox) in d1.into_inboxes().into_iter().enumerate() {
                    if let Some((v, m)) = local[w].take() {
                        // The relay was the sender itself (u == w).
                        if v != w {
                            traffic.send(w, v, m);
                        }
                    }
                    for (u, m) in inbox {
                        let u = u as usize;
                        let v = (w + 2 * n - u - h) % n;
                        if v == u {
                            continue;
                        }
                        if v == w {
                            self.votes[v][u].push(m);
                        } else {
                            traffic.send(w, v, m);
                        }
                    }
                }
                let d2 = net.exchange(traffic);
                // Receiver side of hop 2: invert the relay map per sender.
                for (v, inbox) in d2.into_inboxes().into_iter().enumerate() {
                    for (w, m) in inbox {
                        let u = (w as usize + 2 * n - v - h) % n;
                        if u == v {
                            continue;
                        }
                        self.votes[v][u].push(m);
                    }
                }
                self.i += 1;
                if self.i == self.copies {
                    return Ok(Step::Done(self.finish()));
                }
                Ok(Step::Running)
            }
        }
    }

    fn snapshot(&mut self, _net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        enc.put_usize(self.i);
        match &self.phase {
            RelayPhase::Hop1 => enc.put_u8(0),
            RelayPhase::Hop2 { d1, local } => {
                enc.put_u8(1);
                d1.snapshot(enc);
                enc.put_seq(local, |e, slot| {
                    e.put_opt(slot.as_ref(), |e, (v, m)| {
                        e.put_usize(*v);
                        e.put_bits(m);
                    });
                });
            }
        }
        for row in &self.votes {
            for cell in row {
                enc.put_seq(cell, Enc::put_bits);
            }
        }
        Ok(())
    }
}

impl AllToAllProtocol for RelayReplication {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("relay-replication(x{})", self.copies))
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(RelaySession::new(self, net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(RelaySession::restore(self, net, inst, dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(10, 3, &mut rng);
        let mut net = Network::new(10, 8, 0.0, Adversary::none());
        let out = RelayReplication { copies: 3 }.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 6);
    }

    #[test]
    fn sparse_topology_uses_time_replication() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let topo = Topology::random_regular(16, 4, 3);
        let inst = AllToAllInstance::random_on(&topo, 3, &mut rng);
        let mut net = Network::on_topology(topo, 8, 0.0, Adversary::none());
        let out = RelayReplication { copies: 3 }.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        // One direct round per copy (no relay hops on a sparse graph).
        assert_eq!(net.rounds(), 3);
    }

    #[test]
    fn rejects_bad_copies() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(4, 2, &mut rng);
        let mut net = Network::new(4, 8, 0.0, Adversary::none());
        assert!(RelayReplication { copies: 0 }.run(&mut net, &inst).is_err());
        assert!(RelayReplication { copies: 4 }.run(&mut net, &inst).is_err());
    }
}
