//! The peeling-based k-sparse recovery sketch.

use crate::cell::Cell;
use bdclique_bits::BitVec;
use bdclique_hash::{KWiseHash, KWiseHashFamily, MersenneField, SharedRandomness};
use std::error::Error;
use std::fmt;

/// Errors produced by sketch (de)serialization and insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// A serialized sketch had the wrong bit length for its shape.
    WireLength {
        /// Expected bit count.
        expected: usize,
        /// Actual bit count.
        actual: usize,
    },
    /// A key does not fit the configured key width.
    KeyOutOfRange {
        /// The offending key.
        key: u64,
        /// The key width in bits.
        key_bits: u32,
    },
    /// A cell field exceeded its fixed serialization width (the protocols
    /// bound frequencies, so this indicates misuse).
    FieldOverflow,
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::WireLength { expected, actual } => {
                write!(
                    f,
                    "serialized sketch length {actual} != expected {expected}"
                )
            }
            SketchError::KeyOutOfRange { key, key_bits } => {
                write!(f, "key {key} does not fit in {key_bits} bits")
            }
            SketchError::FieldOverflow => write!(f, "cell field exceeds serialization width"),
        }
    }
}

impl Error for SketchError {}

/// The shape (and therefore exact wire size) of a sketch.
///
/// All sketches exchanged by a protocol share one shape so that every sketch
/// serializes to exactly [`SketchShape::bit_len`] bits — the fixed `t` of
/// the paper's Step II (Eq. (7)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SketchShape {
    /// Number of hash rows (independent hash functions).
    pub rows: usize,
    /// Cells per row.
    pub cols: usize,
    /// Width of keys in bits (≤ 63).
    pub key_bits: u32,
    /// Width of the serialized `count` field in bits (two's complement).
    pub count_bits: u32,
}

impl SketchShape {
    /// A shape sized to recover around `capacity` distinct keys with high
    /// probability: 4 rows of `max(2·capacity, 6)` cells. Four rows keep the
    /// all-rows collision probability of a residual pair at `(1/cols)^4`
    /// (the paper's `O(k log² |U|)` sizing buys the same `1/poly` failure
    /// bound), and the load factor stays far below the peeling threshold.
    pub fn for_capacity(capacity: usize, key_bits: u32) -> Self {
        Self {
            rows: 4,
            cols: (2 * capacity).max(6),
            key_bits,
            count_bits: 16,
        }
    }

    /// Bits per serialized cell.
    pub fn cell_bits(&self) -> usize {
        // count (two's complement) + key_sum (two's complement, wide enough
        // for count_bits worth of key multiples) + checksum field element.
        self.count_bits as usize + self.key_sum_bits() as usize + 61
    }

    /// Total serialized size in bits — the fixed `t`.
    pub fn bit_len(&self) -> usize {
        self.rows * self.cols * self.cell_bits()
    }

    fn key_sum_bits(&self) -> u32 {
        // Capped at 64: sufficient for the bounded keys/frequencies the
        // protocols use; overflow is caught at serialization time.
        (self.key_bits + self.count_bits + 1).min(64)
    }
}

/// A k-sparse recovery sketch (Lemma 2.3).
///
/// # Examples
///
/// ```
/// use bdclique_sketch::{RecoverySketch, SketchShape};
/// use bdclique_hash::SharedRandomness;
/// use bdclique_bits::BitVec;
///
/// let shared = SharedRandomness::from_bits(&BitVec::zeros(64));
/// let shape = SketchShape::for_capacity(4, 20);
/// let mut sk = RecoverySketch::new(shape, &shared);
/// sk.add(17, 1).unwrap();
/// sk.add(99, -2).unwrap();
/// let got = sk.recover().unwrap();
/// assert_eq!(got, vec![(17, 1), (99, -2)]);
/// ```
#[derive(Debug, Clone)]
pub struct RecoverySketch {
    shape: SketchShape,
    cells: Vec<Cell>,
    row_hashes: Vec<KWiseHash>,
    check_hash: KWiseHash,
}

impl RecoverySketch {
    /// Degree of the polynomial hashes (independence parameter); 7-wise
    /// independence is ample for the cell-placement concentration bounds at
    /// workspace scale.
    const HASH_INDEPENDENCE: usize = 7;

    /// Creates an empty sketch whose hash functions are derived from the
    /// broadcast randomness (the paper's `R2`).
    pub fn new(shape: SketchShape, shared: &SharedRandomness) -> Self {
        let row_family = KWiseHashFamily::new(Self::HASH_INDEPENDENCE, shape.cols as u64);
        let row_hashes = (0..shape.rows)
            .map(|r| row_family.sample(&mut shared.rng(&format!("sketch/row/{r}"))))
            .collect();
        let check_family = KWiseHashFamily::new(Self::HASH_INDEPENDENCE, MersenneField::P);
        let check_hash = check_family.sample(&mut shared.rng("sketch/check"));
        Self {
            shape,
            cells: vec![Cell::default(); shape.rows * shape.cols],
            row_hashes,
            check_hash,
        }
    }

    /// The sketch's shape.
    pub fn shape(&self) -> SketchShape {
        self.shape
    }

    /// Whether no key has been touched (all cells zero).
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(Cell::is_zero)
    }

    /// Changes `key`'s frequency by `freq` (the paper's `Add`).
    ///
    /// # Errors
    ///
    /// [`SketchError::KeyOutOfRange`] when the key exceeds the shape's key
    /// width.
    pub fn add(&mut self, key: u64, freq: i64) -> Result<(), SketchError> {
        if self.shape.key_bits < 64 && key >= 1u64 << self.shape.key_bits {
            return Err(SketchError::KeyOutOfRange {
                key,
                key_bits: self.shape.key_bits,
            });
        }
        if freq == 0 {
            return Ok(());
        }
        let key_hash = self.check_hash.eval_field(key);
        for (r, h) in self.row_hashes.iter().enumerate() {
            let col = h.hash(key) as usize;
            self.cells[r * self.shape.cols + col].add(key, freq, key_hash);
        }
        Ok(())
    }

    /// Merges another sketch built with the same shape and randomness.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ (hash agreement cannot be checked and is
    /// the caller's responsibility, as in the paper where all nodes share
    /// `R2`).
    pub fn merge(&mut self, other: &RecoverySketch) {
        assert_eq!(self.shape, other.shape, "sketch shapes must match");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b);
        }
    }

    /// Recovers every key with non-zero net frequency (the paper's
    /// `Recover`), sorted by key. Returns `None` when the sketch is
    /// overloaded (more distinct keys than the peeling process can resolve).
    pub fn recover(&self) -> Option<Vec<(u64, i64)>> {
        let mut work = self.clone();
        let mut out: Vec<(u64, i64)> = Vec::new();
        loop {
            let mut progressed = false;
            for idx in 0..work.cells.len() {
                let Some((key, count)) =
                    work.cells[idx].decode_pure(work.shape.key_bits, &work.check_hash)
                else {
                    continue;
                };
                // Remove the key entirely and record it.
                work.add(key, -count).ok()?;
                out.push((key, count));
                progressed = true;
            }
            if work.cells.iter().all(Cell::is_zero) {
                // Keys extracted in multiple passes may repeat if a key was
                // re-added; fold duplicates.
                out.sort_unstable();
                let mut folded: Vec<(u64, i64)> = Vec::with_capacity(out.len());
                for (k, c) in out {
                    match folded.last_mut() {
                        Some((lk, lc)) if *lk == k => *lc += c,
                        _ => folded.push((k, c)),
                    }
                }
                folded.retain(|&(_, c)| c != 0);
                return Some(folded);
            }
            if !progressed {
                return None;
            }
        }
    }

    /// Serializes to exactly [`SketchShape::bit_len`] bits.
    ///
    /// # Errors
    ///
    /// [`SketchError::FieldOverflow`] if a count or key-sum exceeds the
    /// fixed widths (protocol misuse: frequencies are bounded by design).
    pub fn to_bits(&self) -> Result<BitVec, SketchError> {
        let mut bits = BitVec::new();
        let cb = self.shape.count_bits;
        let kb = self.shape.key_sum_bits();
        for cell in &self.cells {
            bits.push_uint(
                cb,
                encode_signed(cell.count, cb).ok_or(SketchError::FieldOverflow)?,
            );
            bits.push_uint(
                kb,
                encode_signed_i128(cell.key_sum, kb).ok_or(SketchError::FieldOverflow)?,
            );
            bits.push_uint(61, cell.check_sum);
        }
        debug_assert_eq!(bits.len(), self.shape.bit_len());
        Ok(bits)
    }

    /// Deserializes a sketch; the receiver must supply the same shape and
    /// shared randomness used by the sender.
    ///
    /// # Errors
    ///
    /// [`SketchError::WireLength`] on a length mismatch.
    pub fn from_bits(
        shape: SketchShape,
        bits: &BitVec,
        shared: &SharedRandomness,
    ) -> Result<Self, SketchError> {
        if bits.len() != shape.bit_len() {
            return Err(SketchError::WireLength {
                expected: shape.bit_len(),
                actual: bits.len(),
            });
        }
        let mut sketch = Self::new(shape, shared);
        let cb = shape.count_bits;
        let kb = shape.key_sum_bits();
        let mut pos = 0usize;
        for cell in sketch.cells.iter_mut() {
            let count = decode_signed(bits.read_uint(pos, cb), cb);
            pos += cb as usize;
            let key_sum = decode_signed(bits.read_uint(pos, kb), kb) as i128;
            pos += kb as usize;
            let check_sum = bits.read_uint(pos, 61);
            pos += 61;
            *cell = Cell {
                count,
                key_sum,
                check_sum,
            };
        }
        Ok(sketch)
    }
}

fn encode_signed(v: i64, width: u32) -> Option<u64> {
    let half = 1i64 << (width - 1);
    if v < -half || v >= half {
        return None;
    }
    Some((v as u64) & ((1u64 << width) - 1))
}

fn encode_signed_i128(v: i128, width: u32) -> Option<u64> {
    let half = 1i128 << (width - 1);
    if v < -half || v >= half {
        return None;
    }
    Some(
        (v as u64)
            & if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            },
    )
}

fn decode_signed(raw: u64, width: u32) -> i64 {
    let sign = 1u64 << (width - 1);
    if raw & sign != 0 {
        (raw | !(sign | (sign - 1))) as i64
    } else {
        raw as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn shared(tag: u64) -> SharedRandomness {
        let mut rng = ChaCha8Rng::seed_from_u64(tag);
        SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng))
    }

    #[test]
    fn empty_recovers_empty() {
        let sk = RecoverySketch::new(SketchShape::for_capacity(4, 20), &shared(1));
        assert!(sk.is_empty());
        assert_eq!(sk.recover(), Some(vec![]));
    }

    #[test]
    fn recovers_within_capacity() {
        let sh = shared(2);
        let mut sk = RecoverySketch::new(SketchShape::for_capacity(8, 20), &sh);
        let items: Vec<(u64, i64)> = (0..8).map(|i| (1000 + i as u64, (i as i64) - 4)).collect();
        for &(k, f) in &items {
            if f != 0 {
                sk.add(k, f).unwrap();
            }
        }
        let expect: Vec<(u64, i64)> = items.into_iter().filter(|&(_, f)| f != 0).collect();
        assert_eq!(sk.recover(), Some(expect));
    }

    #[test]
    fn add_then_cancel_leaves_nothing() {
        let sh = shared(3);
        let mut sk = RecoverySketch::new(SketchShape::for_capacity(4, 20), &sh);
        for k in 0..100u64 {
            sk.add(k, 1).unwrap();
        }
        for k in 0..100u64 {
            sk.add(k, -1).unwrap();
        }
        assert!(sk.is_empty());
        assert_eq!(sk.recover(), Some(vec![]));
    }

    #[test]
    fn lemma_2_4_usage_pattern() {
        // Insert n "intended" messages, remove n "received" messages of
        // which a few were corrupted; recover the symmetric difference.
        let sh = shared(4);
        let shape = SketchShape::for_capacity(8, 32);
        let mut sk = RecoverySketch::new(shape, &sh);
        let n = 200u64;
        for u in 0..n {
            let key = (u << 8) | (u & 1); // id ∘ message-bit
            sk.add(key, 1).unwrap();
        }
        // Received: three messages flipped.
        for u in 0..n {
            let bit = if [7, 99, 150].contains(&u) {
                (u & 1) ^ 1
            } else {
                u & 1
            };
            sk.add((u << 8) | bit, -1).unwrap();
        }
        let got = sk.recover().expect("within capacity");
        // 3 corrupted + 3 corrections = 6 entries.
        assert_eq!(got.len(), 6);
        for &(key, freq) in &got {
            let u = key >> 8;
            assert!([7, 99, 150].contains(&u));
            // original has freq +1, corruption has freq -1
            assert_eq!(freq, if key & 1 == u & 1 { 1 } else { -1 });
        }
    }

    #[test]
    fn overload_returns_none_or_correct() {
        let sh = shared(5);
        let mut sk = RecoverySketch::new(SketchShape::for_capacity(2, 20), &sh);
        for k in 0..64u64 {
            sk.add(k, 1).unwrap();
        }
        // 64 keys into capacity-2 sketch: recovery must not hallucinate.
        match sk.recover() {
            None => {}
            Some(items) => {
                assert_eq!(items.len(), 64);
                assert!(items.iter().all(|&(k, f)| k < 64 && f == 1));
            }
        }
    }

    #[test]
    fn merge_equals_sequential_adds() {
        let sh = shared(6);
        let shape = SketchShape::for_capacity(6, 20);
        let mut a = RecoverySketch::new(shape, &sh);
        let mut b = RecoverySketch::new(shape, &sh);
        a.add(1, 2).unwrap();
        a.add(2, -1).unwrap();
        b.add(2, 1).unwrap();
        b.add(3, 5).unwrap();
        a.merge(&b);
        assert_eq!(a.recover(), Some(vec![(1, 2), (3, 5)]));
    }

    #[test]
    fn serialization_roundtrip_fixed_width() {
        let sh = shared(7);
        let shape = SketchShape::for_capacity(5, 24);
        let mut sk = RecoverySketch::new(shape, &sh);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..5 {
            sk.add(rng.gen_range(0..1 << 24), rng.gen_range(-3..=3))
                .unwrap();
        }
        let bits = sk.to_bits().unwrap();
        assert_eq!(bits.len(), shape.bit_len());
        let back = RecoverySketch::from_bits(shape, &bits, &sh).unwrap();
        assert_eq!(back.recover(), sk.recover());
    }

    #[test]
    fn wire_length_is_checked() {
        let sh = shared(9);
        let shape = SketchShape::for_capacity(3, 20);
        let bits = BitVec::zeros(shape.bit_len() + 1);
        assert!(matches!(
            RecoverySketch::from_bits(shape, &bits, &sh),
            Err(SketchError::WireLength { .. })
        ));
    }

    #[test]
    fn key_range_is_checked() {
        let sh = shared(10);
        let mut sk = RecoverySketch::new(SketchShape::for_capacity(3, 8), &sh);
        assert!(matches!(
            sk.add(256, 1),
            Err(SketchError::KeyOutOfRange { .. })
        ));
    }

    #[test]
    fn different_randomness_different_layout() {
        let shape = SketchShape::for_capacity(4, 20);
        let mut a = RecoverySketch::new(shape, &shared(11));
        let mut b = RecoverySketch::new(shape, &shared(12));
        a.add(77, 1).unwrap();
        b.add(77, 1).unwrap();
        assert_ne!(a.to_bits().unwrap(), b.to_bits().unwrap());
    }

    #[test]
    fn signed_encoding_roundtrip() {
        for width in [8u32, 16, 32] {
            for v in [-5i64, -1, 0, 1, 100].iter().copied() {
                if let Some(enc) = encode_signed(v, width) {
                    assert_eq!(decode_signed(enc, width), v, "v={v} width={width}");
                }
            }
        }
        assert_eq!(encode_signed(i64::MAX, 16), None);
        assert_eq!(encode_signed(-40000, 16), None);
    }
}
