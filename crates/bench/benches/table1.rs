//! Criterion wall-time benchmarks: one group per Table 1 row (plus the
//! baselines), each at a fixed small configuration under attack. The
//! *shape* claims (round counts vs n) live in the `tables` binary; these
//! benches track the simulator-side cost of each protocol.

use bdclique_bench::{run_trial, AdversarySpec};
use bdclique_core::protocols::{
    AdaptiveTakeOne, DetHypercube, DetSqrt, NaiveExchange, NonAdaptiveAllToAll,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    g.bench_function("baseline/naive/n16", |b| {
        b.iter(|| {
            run_trial(
                &NaiveExchange,
                16,
                2,
                18,
                0.07,
                AdversarySpec::GreedyFlip,
                1,
            )
            .unwrap()
        })
    });
    g.bench_function("row1/nonadaptive/n16", |b| {
        let proto = NonAdaptiveAllToAll {
            copies: 7,
            ..Default::default()
        };
        b.iter(|| {
            run_trial(
                &proto,
                16,
                2,
                18,
                1.0 / 16.0,
                AdversarySpec::RandomMatchingsFlip,
                2,
            )
            .unwrap()
        })
    });
    g.bench_function("row2/adaptive-take1/n16", |b| {
        let proto = AdaptiveTakeOne {
            line_capacity: 1,
            ..Default::default()
        };
        b.iter(|| run_trial(&proto, 16, 1, 18, 0.07, AdversarySpec::GreedyFlip, 3).unwrap())
    });
    g.bench_function("row3/det-hypercube/n32", |b| {
        let proto = DetHypercube::default();
        b.iter(|| run_trial(&proto, 32, 1, 18, 1.0 / 16.0, AdversarySpec::GreedyFlip, 4).unwrap())
    });
    g.bench_function("row4/det-sqrt/n64", |b| {
        let proto = DetSqrt::default();
        b.iter(|| run_trial(&proto, 64, 1, 18, 0.5 / 8.0, AdversarySpec::GreedyFlip, 5).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
