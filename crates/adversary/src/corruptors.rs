//! Payload rewriting policies shared by all strategies.

use crate::rng_state;
use bdclique_bits::BitVec;
use bdclique_netsim::{AdversaryView, CorruptionScope, Corruptor, EdgeSet};
use bdclique_snapshot::{Dec, Enc, SnapError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How a controlled frame is rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Flip every bit (the hardest deterministic corruption for linear
    /// codes with majority-style decoding).
    Flip,
    /// Replace with all-zero bits of the same length.
    Zero,
    /// Replace with uniformly random bits of the same length.
    Random,
    /// Remove the frame entirely (erasure-style jamming).
    Suppress,
}

impl Payload {
    /// Applies the policy to a frame.
    pub fn apply(self, frame: Option<&BitVec>, rng: &mut impl Rng) -> Option<BitVec> {
        let frame = frame?;
        match self {
            Payload::Flip => {
                let mut f = frame.clone();
                for i in 0..f.len() {
                    f.flip(i);
                }
                Some(f)
            }
            Payload::Zero => Some(BitVec::zeros(frame.len())),
            Payload::Random => Some(BitVec::from_fn(frame.len(), |_| rng.gen())),
            Payload::Suppress => None,
        }
    }
}

/// A [`Corruptor`] that applies a fixed [`Payload`] policy to every frame
/// crossing the controlled edges (both directions — the adversary owns the
/// edge).
#[derive(Debug)]
pub struct PayloadCorruptor {
    payload: Payload,
    rng: ChaCha8Rng,
}

impl PayloadCorruptor {
    /// Creates the corruptor; `seed` matters only for [`Payload::Random`].
    pub fn new(payload: Payload, seed: u64) -> Self {
        Self {
            payload,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Corruptor for PayloadCorruptor {
    fn corrupt(
        &mut self,
        _view: &AdversaryView<'_>,
        edges: &EdgeSet,
        scope: &mut CorruptionScope<'_>,
    ) {
        let mut edge_list: Vec<(usize, usize)> = edges.iter().collect();
        edge_list.sort_unstable(); // determinism independent of hash order
        for (u, v) in edge_list {
            for (a, b) in [(u, v), (v, u)] {
                if scope.intended(a, b).is_some() {
                    let new = self.payload.apply(scope.intended(a, b), &mut self.rng);
                    scope.set(a, b, new);
                }
            }
        }
    }

    fn save_state(&self, enc: &mut Enc) {
        rng_state::save(enc, &self.rng);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.rng = rng_state::load(dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_inverts_every_bit() {
        let f = BitVec::from_bools(&[true, false, true]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = Payload::Flip.apply(Some(&f), &mut rng).unwrap();
        assert_eq!(out, BitVec::from_bools(&[false, true, false]));
    }

    #[test]
    fn zero_and_suppress() {
        let f = BitVec::from_bools(&[true, true]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            Payload::Zero.apply(Some(&f), &mut rng).unwrap(),
            BitVec::zeros(2)
        );
        assert_eq!(Payload::Suppress.apply(Some(&f), &mut rng), None);
        assert_eq!(Payload::Flip.apply(None, &mut rng), None);
    }

    #[test]
    fn random_preserves_length() {
        let f = BitVec::from_bools(&[true; 9]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = Payload::Random.apply(Some(&f), &mut rng).unwrap();
        assert_eq!(out.len(), 9);
    }
}
