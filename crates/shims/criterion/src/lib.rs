//! Offline API-subset shim of the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Provides the harness surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `measurement_time`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple mean/min wall-clock report instead of criterion's full
//! statistical machinery. Bench names passed on the command line filter by
//! substring, matching `cargo bench -- <filter>` usage.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    per_sample: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `body`, running enough iterations per sample to fill the
    /// configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Calibrate: one timed run decides the batch size.
        let t0 = Instant::now();
        hint::black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.per_sample.max(Duration::from_millis(1));
        let per_sample_iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
            / self.samples.max(1) as u64;
        let iters = per_sample_iters.max(1);
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(body());
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self) -> (Duration, Duration) {
        if self.results.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = *self.results.iter().min().unwrap();
        let total: Duration = self.results.iter().sum();
        (total / self.results.len() as u32, min)
    }
}

/// A named group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            per_sample: self.measurement_time,
            results: Vec::new(),
        };
        body(&mut b);
        let (mean, min) = b.report();
        println!("{full:<48} mean {mean:>12.3?}  min {min:>12.3?}");
        self
    }

    /// Finishes the group (report flushing is a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Criterion {
    /// Applies `cargo bench -- <filter>` style substring filters.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, body);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion {
            filters: vec!["routing".into()],
        };
        assert!(c.matches("routing/unit/n64"));
        assert!(!c.matches("codes/rs"));
    }
}
