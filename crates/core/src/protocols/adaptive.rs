//! Theorem 1.3 / 5.5: randomized `AllToAllComm` against the **adaptive**
//! (rushing) α-BD adversary, via locally decodable codes and sparse recovery
//! sketches.
//!
//! Two variants, following the paper's Section 3 exposition:
//!
//! * [`AdaptiveTakeOne`] ("Take I", `O(q)` rounds): every node LDC-encodes
//!   its whole outgoing row `M(u, V)`, scatters one codeword symbol per
//!   node, and every receiver locally decodes its own positions from `q`
//!   non-adaptive queries fetched through the resilient router.
//! * [`AdaptiveAllToAll`] ("Take II", Theorem 1.3): the full pipeline —
//!   direct exchange, random partition `P` (Lemma 5.6), per-(group, node)
//!   sparse recovery sketches (Lemma 2.4), LDC-encoded distributed sketch
//!   storage, non-adaptive query fetch, and local correction. The
//!   `query_via_ldc` switch replaces the LDC fetch with a direct resilient
//!   sketch pull — the ablation that quantifies when the LDC machinery pays
//!   (it requires `αn ≫ 1/α`; see `EXPERIMENTS.md`).
//!
//! **Ordering matters**: codewords are scattered *before* the decoding
//! randomness `R3` is generated and broadcast, so the rushing adversary
//! commits its corruption of the distributed storage without knowing which
//! positions will be queried — exactly the paper's Step II/III order.

use super::AllToAllProtocol;
use crate::broadcast::broadcast;
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::{route, RouterConfig, RoutingInstance, SuperMessage};
use bdclique_bits::{bits_for, BitVec};
use bdclique_codes::{Ldc, RmLdc};
use bdclique_hash::{KWiseHashFamily, SharedRandomness};
use bdclique_netsim::Network;
use bdclique_sketch::{RecoverySketch, SketchShape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Per-node fetched query answers: `(chunk, position) → holder-indexed
/// symbol bundle`.
type QueryAnswers = HashMap<(usize, usize), BitVec>;

/// LDC geometry shared by both variants.
struct LdcPlan {
    ldc: RmLdc,
    /// Symbol width in bits (= field extension degree).
    mf: u32,
    /// Payload bits per codeword.
    cap_bits: usize,
}

impl LdcPlan {
    /// Picks the largest bivariate RM code whose plane fits in `n` nodes and
    /// whose lines keep at least `line_capacity` error slots.
    fn for_network(n: usize, lines: usize, line_capacity: usize) -> Result<Self, CoreError> {
        let mf = (bits_for(n) / 2).min(8);
        if mf < 2 {
            return Err(CoreError::infeasible(format!(
                "n = {n} too small for a bivariate RM plane (need n ≥ 16)"
            )));
        }
        let q = 1usize << mf;
        debug_assert!(q * q <= n.next_power_of_two().max(q * q));
        if q * q > n {
            return Err(CoreError::infeasible(format!(
                "RM plane q² = {} exceeds n = {n}",
                q * q
            )));
        }
        let d = q
            .checked_sub(1 + 2 * line_capacity)
            .filter(|&d| d >= 1)
            .ok_or_else(|| {
                CoreError::infeasible(format!(
                    "field size {q} cannot offer line capacity {line_capacity}"
                ))
            })?;
        let ldc =
            RmLdc::new(mf, d, lines).map_err(|e| CoreError::infeasible(format!("RM LDC: {e}")))?;
        let cap_bits = ldc.message_len() * mf as usize;
        Ok(Self { ldc, mf, cap_bits })
    }

    /// Bit position → (chunk, symbol index, bit within symbol).
    fn locate(&self, bit: usize) -> (usize, usize, usize) {
        let chunk = bit / self.cap_bits;
        let inner = bit % self.cap_bits;
        (chunk, inner / self.mf as usize, inner % self.mf as usize)
    }
}

/// Scatters per-holder chunked LDC codewords: one symbol per node per chunk,
/// `lanes` chunks per round. Returns `symbols[receiver][holder][chunk]`.
///
/// Holders with fewer chunks than `chunks` pad with zero codewords.
fn scatter_codewords(
    net: &mut Network,
    plan: &LdcPlan,
    payloads: &[BitVec], // per holder, padded to chunks * cap_bits
    chunks: usize,
) -> Result<Vec<Vec<Vec<u16>>>, CoreError> {
    let n = net.n();
    let mf = plan.mf;
    let lanes = (net.bandwidth() / mf as usize).max(1);
    let positions = plan.ldc.codeword_len(); // q² ≤ n
    let mut symbols = vec![vec![vec![0u16; chunks]; n]; n];

    // Pre-encode all codewords.
    let mut codewords: Vec<Vec<Vec<u16>>> = Vec::with_capacity(n);
    for payload in payloads {
        let mut per_chunk = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let chunk_bits = payload.slice(c * plan.cap_bits, (c + 1) * plan.cap_bits);
            let msg = chunk_bits.to_symbols(mf);
            let cw = plan
                .ldc
                .encode(&msg)
                .map_err(|e| CoreError::invalid(format!("LDC encode: {e}")))?;
            per_chunk.push(cw);
        }
        codewords.push(per_chunk);
    }

    let chunk_ids: Vec<usize> = (0..chunks).collect();
    for pack in chunk_ids.chunks(lanes) {
        let mut traffic = net.traffic();
        for h in 0..n {
            for r in 0..positions.min(n) {
                if r == h {
                    continue;
                }
                let mut frame = net.frame_buffer(pack.len() * mf as usize);
                for (lane, &c) in pack.iter().enumerate() {
                    frame.write_uint(lane * mf as usize, mf, codewords[h][c][r] as u64);
                }
                traffic.send(h, r, frame);
            }
            // Own position held locally.
            if h < positions {
                for &c in pack {
                    symbols[h][h][c] = codewords[h][c][h];
                }
            }
        }
        let delivery = net.exchange(traffic);
        for r in 0..positions.min(n) {
            for (h, frame) in delivery.inbox_of(r) {
                for (lane, &c) in pack.iter().enumerate() {
                    if frame.len() >= (lane + 1) * mf as usize {
                        symbols[r][h][c] = frame.read_uint(lane * mf as usize, mf) as u16;
                    }
                }
            }
        }
        net.reclaim(delivery);
    }
    Ok(symbols)
}

/// Fetches queried symbols through the resilient router.
///
/// `wanted[v]` = set of `(chunk, position)` pairs node `v` must learn for
/// **all** holders. Returns `answers[v]` mapping `(chunk, position)` to the
/// `n·mf`-bit holder-indexed symbol bundle.
fn fetch_queries(
    net: &mut Network,
    plan: &LdcPlan,
    symbols: &[Vec<Vec<u16>>],
    wanted: &[Vec<(usize, usize)>],
    chunks: usize,
    router: &RouterConfig,
) -> Result<Vec<QueryAnswers>, CoreError> {
    let n = net.n();
    let mf = plan.mf as usize;
    // targets_of[(position r, chunk c)] -> target nodes.
    let mut targets_of: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (v, pairs) in wanted.iter().enumerate() {
        for &(c, r) in pairs {
            targets_of.entry((r, c)).or_default().push(v);
        }
    }
    let mut messages = Vec::with_capacity(targets_of.len());
    for ((r, c), mut targets) in targets_of {
        targets.sort_unstable();
        targets.dedup();
        let mut payload = BitVec::zeros(n * mf);
        for h in 0..n {
            payload.write_uint(h * mf, plan.mf, symbols[r][h][c] as u64);
        }
        messages.push(SuperMessage {
            src: r,
            slot: c,
            payload,
            targets,
        });
    }
    let instance = RoutingInstance {
        n,
        payload_bits: n * mf,
        messages,
    };
    let routed = route(net, &instance, router)?;
    let _ = chunks;
    let mut answers: Vec<QueryAnswers> = vec![HashMap::new(); n];
    for (v, pairs) in wanted.iter().enumerate() {
        for &(c, r) in pairs {
            if let Some(p) = routed.delivered[v].get(&(r, c)) {
                answers[v].insert((c, r), p.clone());
            }
        }
    }
    Ok(answers)
}

/// Locally decodes one symbol: gathers the per-line answers for `z` from the
/// fetched bundles (selecting holder `h`'s lane) and runs `LDCDecode`.
fn local_decode_symbol(
    plan: &LdcPlan,
    shared: &SharedRandomness,
    answers: &QueryAnswers,
    chunk: usize,
    z: usize,
    holder: usize,
) -> Option<u16> {
    let mf = plan.mf as usize;
    let qs = plan.ldc.decode_indices(z, shared);
    let vals: Vec<u16> = qs
        .iter()
        .map(|&r| {
            answers
                .get(&(chunk, r))
                .filter(|p| p.len() >= (holder + 1) * mf)
                .map_or(0, |p| p.read_uint(holder * mf, plan.mf) as u16)
        })
        .collect();
    plan.ldc.local_decode(z, &vals, shared).ok()
}

// ---------------------------------------------------------------------------
// Take I
// ---------------------------------------------------------------------------

/// "Take I" (Section 3): LDC over the raw outgoing rows, `O(q)` rounds.
#[derive(Debug, Clone)]
pub struct AdaptiveTakeOne {
    /// Router configuration for the query fetch.
    pub router: RouterConfig,
    /// LDC amplification lines.
    pub lines: usize,
    /// Guaranteed per-line adversarial error capacity.
    pub line_capacity: usize,
    /// Seed for node `v1`'s randomness.
    pub seed: u64,
}

impl Default for AdaptiveTakeOne {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            lines: 3,
            line_capacity: 2,
            seed: 0x5eed2,
        }
    }
}

impl AllToAllProtocol for AdaptiveTakeOne {
    fn name(&self) -> &'static str {
        "adaptive-take1"
    }

    fn run(&self, net: &mut Network, inst: &AllToAllInstance) -> Result<AllToAllOutput, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        let plan = LdcPlan::for_network(n, self.lines, self.line_capacity)?;
        if net.bandwidth() < plan.mf as usize {
            return Err(CoreError::infeasible("bandwidth below LDC symbol width"));
        }
        let row_bits = n * b;
        let chunks = row_bits.div_ceil(plan.cap_bits).max(1);

        // ---- Scatter codewords of every row (before R3 exists). ----
        let payloads: Vec<BitVec> = (0..n)
            .map(|u| {
                let mut p = inst.outgoing_concat(u);
                p.pad_to(chunks * plan.cap_bits);
                p
            })
            .collect();
        let symbols = scatter_codewords(net, &plan, &payloads, chunks)?;

        // ---- Broadcast R3 (now the adversary may see it). ----
        let mut v1_rng = ChaCha8Rng::seed_from_u64(self.seed);
        let r3_bits = SharedRandomness::generate(&mut v1_rng);
        net.publish("adaptive1/R3", r3_bits.clone());
        let r3_received = broadcast(net, 0, &r3_bits, &self.router)?;

        // ---- Query sets: v needs bits [v·b, (v+1)·b) of every row. ----
        let mut wanted: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut zs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (chunk, z)
        for v in 0..n {
            let shared = SharedRandomness::from_bits(&r3_received[v]);
            let mut pairs = Vec::new();
            for t in 0..b {
                let (c, z, _) = plan.locate(v * b + t);
                if !pairs.contains(&(c, z)) {
                    pairs.push((c, z));
                }
            }
            for &(c, z) in &pairs {
                for r in plan.ldc.decode_indices(z, &shared) {
                    if !wanted[v].contains(&(c, r)) {
                        wanted[v].push((c, r));
                    }
                }
            }
            zs[v] = pairs;
        }
        let answers = fetch_queries(net, &plan, &symbols, &wanted, chunks, &self.router)?;

        // ---- Local decoding. ----
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            let shared = SharedRandomness::from_bits(&r3_received[v]);
            // Decode each needed symbol once per holder.
            let mut decoded: HashMap<(usize, usize, usize), Option<u16>> = HashMap::new();
            for u in 0..n {
                if u == v {
                    out.set(v, u, inst.message(u, u).clone());
                    continue;
                }
                let mut bits = BitVec::zeros(b);
                let mut ok = true;
                for t in 0..b {
                    let (c, z, inner) = plan.locate(v * b + t);
                    let sym = *decoded.entry((u, c, z)).or_insert_with(|| {
                        local_decode_symbol(&plan, &shared, &answers[v], c, z, u)
                    });
                    match sym {
                        Some(s) => bits.set(t, s >> inner & 1 == 1),
                        None => ok = false,
                    }
                }
                if ok {
                    out.set(v, u, bits);
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Take II
// ---------------------------------------------------------------------------

/// The full adaptive compiler (Theorem 1.3, "Take II").
#[derive(Debug, Clone)]
pub struct AdaptiveAllToAll {
    /// Router configuration for all routed waves.
    pub router: RouterConfig,
    /// `1/α` — the size of each random part `P_j` (must divide `n`).
    pub p_size: usize,
    /// Sparse-recovery capacity per `(P_j, v)` sketch (Lemma 5.6 gives
    /// `O(log n)` w.h.p.; the default suits workspace scale).
    pub sketch_capacity: usize,
    /// LDC amplification lines.
    pub lines: usize,
    /// Guaranteed per-line adversarial error capacity.
    pub line_capacity: usize,
    /// `true` = fetch sketches through the LDC storage (the paper);
    /// `false` = pull sketches directly through the router (ablation).
    pub query_via_ldc: bool,
    /// Seed for node `v1`'s randomness.
    pub seed: u64,
}

impl Default for AdaptiveAllToAll {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            p_size: 4,
            sketch_capacity: 4,
            lines: 3,
            line_capacity: 2,
            query_via_ldc: true,
            seed: 0x5eed3,
        }
    }
}

impl AdaptiveAllToAll {
    fn sketch_key(n: usize, b: usize, u: usize, v: usize, m: &BitVec) -> u64 {
        let id = (u * n + v) as u64;
        (id << b) | m.read_uint(0, b as u32)
    }

    fn key_bits(n: usize, b: usize) -> u32 {
        2 * bits_for(n) + b as u32
    }

    /// The random partition `P` of Lemma 5.6: order nodes by a Θ(log n)-wise
    /// independent hash (ties by id), cut into `n / p_size` consecutive
    /// parts, sort each part ascending.
    fn partition(shared: &SharedRandomness, n: usize, p_size: usize) -> Vec<Vec<usize>> {
        let family = KWiseHashFamily::new(16, (4 * n) as u64);
        let f = family.sample(&mut shared.rng("partition"));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&u| (f.hash(u as u64), u));
        order
            .chunks(p_size)
            .map(|part| {
                let mut part: Vec<usize> = part.to_vec();
                part.sort_unstable();
                part
            })
            .collect()
    }
}

impl AllToAllProtocol for AdaptiveAllToAll {
    fn name(&self) -> &'static str {
        "adaptive-take2"
    }

    fn run(&self, net: &mut Network, inst: &AllToAllInstance) -> Result<AllToAllOutput, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        if b > 16 {
            return Err(CoreError::invalid("sketch keys support B ≤ 16 bits"));
        }
        let p_size = self.p_size;
        if p_size < 2 || !n.is_multiple_of(p_size) {
            return Err(CoreError::invalid(format!(
                "p_size {p_size} must divide n = {n} (and be ≥ 2)"
            )));
        }
        let w = n / p_size; // |S_i| = αn; also the number of P-groups
        let s_count = p_size; // number of S segments
        let p_count = w;

        // ---- Step I: direct exchange. ----
        let received = super::NaiveExchange.run(net, inst)?;

        // ---- Broadcast R1 (partition) and R2 (sketch hashes). ----
        let mut v1_rng = ChaCha8Rng::seed_from_u64(self.seed);
        let r1_bits = SharedRandomness::generate(&mut v1_rng);
        let r2_bits = SharedRandomness::generate(&mut v1_rng);
        net.publish("adaptive2/R1", r1_bits.clone());
        net.publish("adaptive2/R2", r2_bits.clone());
        let r1_received = broadcast(net, 0, &r1_bits, &self.router)?;
        let r2_received = broadcast(net, 0, &r2_bits, &self.router)?;

        // All honest nodes derive the same partition within the routing
        // margin; the reference copy drives the shared schedule.
        let shared1 = SharedRandomness::from_bits(&r1_received[0]);
        let parts = Self::partition(&shared1, n, p_size);
        debug_assert_eq!(parts.len(), p_count);
        let mut group_of = vec![0usize; n]; // P-group of each node
        let mut index_in_group = vec![0usize; n];
        for (j, part) in parts.iter().enumerate() {
            for (i, &u) in part.iter().enumerate() {
                group_of[u] = j;
                index_in_group[u] = i;
            }
        }
        let seg_of = |v: usize| v / w; // S-segment index of v
        let seg = |i: usize| (i * w)..((i + 1) * w);

        // ---- Step II(a): wave A — P_j[i] learns M(P_j, S_i). ----
        let wave_a = RoutingInstance {
            n,
            payload_bits: w * b,
            messages: (0..n)
                .flat_map(|v| (0..s_count).map(move |i| (v, i)))
                .map(|(v, i)| SuperMessage {
                    src: v,
                    slot: i,
                    payload: BitVec::concat(seg(i).map(|x| inst.message(v, x))),
                    targets: vec![parts[group_of[v]][i]],
                })
                .collect(),
        };
        let routed_a = route(net, &wave_a, &self.router)?;

        // ---- Step II(b): build sketches Sk(P_j, {x}) at P_j[i]. ----
        let key_bits = Self::key_bits(n, b);
        let shape = SketchShape::for_capacity(self.sketch_capacity, key_bits);
        let t = shape.bit_len();
        // pieces[h] = Sk(P_j, S_i) for the (j, i) with h = P_j[i].
        let mut pieces: Vec<BitVec> = vec![BitVec::new(); n];
        for part in parts.iter() {
            for (i, &h) in part.iter().enumerate() {
                let shared2 = SharedRandomness::from_bits(&r2_received[h]);
                let mut piece = BitVec::new();
                for (off, x) in seg(i).enumerate() {
                    let mut sk = RecoverySketch::new(shape, &shared2);
                    for &u in part {
                        let Some(pay) = routed_a.delivered[h].get(&(u, i)) else {
                            continue;
                        };
                        if pay.len() < (off + 1) * b {
                            continue;
                        }
                        let m = pay.slice(off * b, (off + 1) * b);
                        let key = Self::sketch_key(n, b, u, x, &m);
                        sk.add(key, 1)
                            .map_err(|e| CoreError::invalid(format!("sketch add: {e}")))?;
                    }
                    piece.extend_bits(
                        &sk.to_bits()
                            .map_err(|e| CoreError::invalid(format!("sketch wire: {e}")))?,
                    );
                }
                debug_assert_eq!(piece.len(), w * t);
                pieces[h] = piece;
            }
        }

        // ---- Step III: every v learns Sk(P_j, {v}) for all j. ----
        // sketch_bits[v][j] = the t bits of Sk(P_j, {v}).
        let mut sketch_bits: Vec<Vec<Option<BitVec>>> = vec![vec![None; p_count]; n];
        if self.query_via_ldc {
            let plan = LdcPlan::for_network(n, self.lines, self.line_capacity)?;
            let chunks = (w * t).div_ceil(plan.cap_bits).max(1);
            let padded: Vec<BitVec> = pieces
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    p.pad_to(chunks * plan.cap_bits);
                    p
                })
                .collect();
            let symbols = scatter_codewords(net, &plan, &padded, chunks)?;

            // R3 after the scatter (rushing adversary ordering).
            let r3_bits = SharedRandomness::generate(&mut v1_rng);
            net.publish("adaptive2/R3", r3_bits.clone());
            let r3_received = broadcast(net, 0, &r3_bits, &self.router)?;

            // Positions of v's sketch inside any piece (Eq. (7)): bits
            // [pos_v·t, (pos_v+1)·t) — identical across j.
            let mut wanted: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
            let mut z_pairs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
            for v in 0..n {
                let shared3 = SharedRandomness::from_bits(&r3_received[v]);
                let pos_v = v - seg_of(v) * w;
                let mut pairs = Vec::new();
                for bit in pos_v * t..(pos_v + 1) * t {
                    let (c, z, _) = plan.locate(bit);
                    if !pairs.contains(&(c, z)) {
                        pairs.push((c, z));
                    }
                }
                let mut need = Vec::new();
                for &(c, z) in &pairs {
                    for r in plan.ldc.decode_indices(z, &shared3) {
                        if !need.contains(&(c, r)) {
                            need.push((c, r));
                        }
                    }
                }
                wanted[v] = need;
                z_pairs[v] = pairs;
            }
            let answers = fetch_queries(net, &plan, &symbols, &wanted, chunks, &self.router)?;

            for v in 0..n {
                let shared3 = SharedRandomness::from_bits(&r3_received[v]);
                let pos_v = v - seg_of(v) * w;
                for j in 0..p_count {
                    let holder = parts[j][seg_of(v)];
                    // Decode the t bits of Sk(P_j, {v}).
                    let mut bits = BitVec::zeros(t);
                    let mut ok = true;
                    let mut cache: HashMap<(usize, usize), Option<u16>> = HashMap::new();
                    for (offset, bit) in (pos_v * t..(pos_v + 1) * t).enumerate() {
                        let (c, z, inner) = plan.locate(bit);
                        let sym = *cache.entry((c, z)).or_insert_with(|| {
                            local_decode_symbol(&plan, &shared3, &answers[v], c, z, holder)
                        });
                        match sym {
                            Some(s) => bits.set(offset, s >> inner & 1 == 1),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        sketch_bits[v][j] = Some(bits);
                    }
                }
            }
        } else {
            // Ablation: direct resilient sketch pull (k = αn messages per
            // node — outside the paper's LDC regime but feasible when
            // αn ≈ 1/α).
            let pull = RoutingInstance {
                n,
                payload_bits: t,
                messages: (0..p_count)
                    .flat_map(|j| (0..s_count).map(move |i| (j, i)))
                    .flat_map(|(j, i)| {
                        let h = parts[j][i];
                        seg(i)
                            .enumerate()
                            .map(|(off, x)| SuperMessage {
                                src: h,
                                slot: j * w + off,
                                payload: pieces[h].slice(off * t, (off + 1) * t),
                                targets: vec![x],
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect(),
            };
            let routed = route(net, &pull, &self.router)?;
            for v in 0..n {
                for j in 0..p_count {
                    let h = parts[j][seg_of(v)];
                    let off = v - seg_of(v) * w;
                    sketch_bits[v][j] = routed.delivered[v].get(&(h, j * w + off)).cloned();
                }
            }
        }

        // ---- Step IV: local correction (Lemma 2.4 / Lemma B.1). ----
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            // Start from the directly received messages.
            let mut current: Vec<BitVec> = (0..n)
                .map(|u| {
                    received
                        .received(v, u)
                        .cloned()
                        .unwrap_or_else(|| BitVec::zeros(b))
                })
                .collect();
            let shared2 = SharedRandomness::from_bits(&r2_received[v]);
            for j in 0..p_count {
                let Some(bits) = &sketch_bits[v][j] else {
                    continue;
                };
                let Ok(mut sk) = RecoverySketch::from_bits(shape, bits, &shared2) else {
                    continue;
                };
                for &u in &parts[j] {
                    let key = Self::sketch_key(n, b, u, v, &current[u]);
                    if sk.add(key, -1).is_err() {
                        continue;
                    }
                }
                let Some(items) = sk.recover() else {
                    continue;
                };
                for (key, freq) in items {
                    if freq != 1 {
                        continue; // -1 entries are the corrupted receptions
                    }
                    let id = key >> b;
                    let u = (id / n as u64) as usize;
                    let tgt = (id % n as u64) as usize;
                    if tgt != v || u >= n || !parts[j].contains(&u) {
                        continue;
                    }
                    let mut m = BitVec::zeros(b);
                    if b > 0 {
                        m.write_uint(0, b as u32, key & ((1u64 << b) - 1));
                    }
                    current[u] = m;
                }
            }
            for u in 0..n {
                out.set(
                    v,
                    u,
                    if u == v {
                        inst.message(u, u).clone()
                    } else {
                        current[u].clone()
                    },
                );
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;

    #[test]
    fn take1_perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveTakeOne {
            line_capacity: 1, // GF(4) plane at n = 16
            ..Default::default()
        };
        let out = proto.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn take2_direct_pull_perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveAllToAll {
            query_via_ldc: false,
            ..Default::default()
        };
        let out = proto.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn take2_ldc_perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveAllToAll {
            line_capacity: 1, // GF(4) plane at n = 16
            ..Default::default()
        };
        let out = proto.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn take2_rejects_bad_p_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveAllToAll {
            p_size: 3,
            ..Default::default()
        };
        assert!(proto.run(&mut net, &inst).is_err());
    }
}
