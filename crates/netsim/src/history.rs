//! Round history: what the adaptive adversary is allowed to remember.
//!
//! The paper's rushing adaptive adversary (footnote 4) may condition on
//! "all the messages sent throughout the network in rounds 1..i−1". Full
//! transcripts of long protocol runs are large, so recording is tiered:
//! digests (per-round corruption sets and volumes) are always available to
//! adaptive strategies, and full intended-traffic transcripts can be turned
//! on per network.

use crate::traffic::Traffic;

/// How much the network records per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryMode {
    /// Record per-round digests only (corrupted edges, traffic volume).
    #[default]
    Digest,
    /// Record digests plus the full intended traffic of every round — the
    /// literal model of footnote 4. Memory grows with **rounds · queued
    /// frames** (each snapshot clones the round's [`Traffic`], which keeps
    /// its sparse representation): a sparse protocol round costs
    /// `O(frames)` per snapshot, and only genuinely dense rounds (load
    /// factor ≥ 1/16, e.g. `NaiveExchange`) pay the `Θ(n²)` matrix. Long
    /// dense runs at large `n` should still prefer
    /// [`HistoryMode::Digest`].
    Full,
    /// Record nothing.
    None,
}

/// One recorded round.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Round index.
    pub round: u64,
    /// The corruption set `F_i` the adversary used (normalized pairs).
    pub corrupted: Vec<(usize, usize)>,
    /// Honest frames queued that round.
    pub frames: u64,
    /// Honest bits queued that round.
    pub bits: u64,
    /// Full intended traffic (only in [`HistoryMode::Full`]).
    pub intended: Option<Traffic>,
}

/// The recorded history of a network run.
#[derive(Debug, Clone, Default)]
pub struct History {
    mode: HistoryMode,
    records: Vec<RoundRecord>,
}

impl History {
    pub(crate) fn new(mode: HistoryMode) -> Self {
        Self {
            mode,
            records: Vec::new(),
        }
    }

    /// Whether the current mode needs the round's intended traffic snapshot.
    ///
    /// The network uses this to decide *before* the round runs whether to
    /// clone the traffic matrix at all: in `Digest`/`None` mode no snapshot
    /// is ever taken, so recording costs O(corrupted edges), not O(n²).
    pub(crate) fn wants_intended(&self) -> bool {
        matches!(self.mode, HistoryMode::Full)
    }

    /// Records one round. `intended` is an owned snapshot taken by the
    /// caller **only** when [`History::wants_intended`] said so; it is moved
    /// straight into the record, so `Full` mode costs exactly one clone per
    /// round and the other modes cost none.
    pub(crate) fn push(
        &mut self,
        round: u64,
        corrupted: Vec<(usize, usize)>,
        frames: u64,
        bits: u64,
        intended: Option<Traffic>,
    ) {
        match self.mode {
            HistoryMode::None => {}
            HistoryMode::Digest => self.records.push(RoundRecord {
                round,
                corrupted,
                frames,
                bits,
                intended: None,
            }),
            HistoryMode::Full => {
                debug_assert!(
                    intended.is_some(),
                    "Full-mode push requires the caller's snapshot"
                );
                self.records.push(RoundRecord {
                    round,
                    corrupted,
                    frames,
                    bits,
                    intended,
                });
            }
        }
    }

    /// The recorded rounds, oldest first.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The recording mode.
    pub fn mode(&self) -> HistoryMode {
        self.mode
    }

    /// Total corrupted (edge, round) slots recorded.
    pub fn total_corrupted(&self) -> usize {
        self.records.iter().map(|r| r.corrupted.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_mode_skips_traffic() {
        let mut h = History::new(HistoryMode::Digest);
        assert!(!h.wants_intended());
        h.push(0, vec![(0, 1)], 2, 5, None);
        assert_eq!(h.records().len(), 1);
        assert!(h.records()[0].intended.is_none());
        assert_eq!(h.total_corrupted(), 1);
    }

    #[test]
    fn full_mode_keeps_traffic() {
        let mut h = History::new(HistoryMode::Full);
        assert!(h.wants_intended());
        let t = Traffic::new(3, 4);
        h.push(0, vec![], 0, 0, Some(t));
        assert!(h.records()[0].intended.is_some());
    }

    #[test]
    fn none_mode_records_nothing() {
        let mut h = History::new(HistoryMode::None);
        assert!(!h.wants_intended());
        h.push(0, vec![(1, 2)], 1, 1, None);
        assert!(h.records().is_empty());
        assert_eq!(h.total_corrupted(), 0);
    }
}
