// lint-fixture-as: crates/core/src/fixture.rs
//! Known-bad: a suppression that suppresses nothing must be removed.

fn plain() -> u64 {
    // bdclique-lint: allow(no-raw-spawn) — stale comment from a refactor.
    7
}
