//! Property-based end-to-end tests: the deterministic protocols must
//! deliver **every** message for arbitrary instances and arbitrary in-budget
//! adversary seeds — their guarantees are worst-case, not probabilistic.

use bdclique::adversary::adaptive::{GreedyLoad, RushingRandom, TargetNode};
use bdclique::adversary::corruptors::PayloadCorruptor;
use bdclique::adversary::plans::RandomMatchings;
use bdclique::adversary::Payload;
use bdclique::bits::BitVec;
use bdclique::core::protocols::{AllToAllProtocol, DetHypercube, DetSqrt};
use bdclique::core::routing::{route, RouterConfig, RoutingInstance, SuperMessage};
use bdclique::core::AllToAllInstance;
use bdclique::netsim::{Adversary, Network};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn adversary_from(case: u8, seed: u64) -> Adversary {
    match case % 4 {
        0 => Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed)),
        1 => Adversary::adaptive(RushingRandom::new(Payload::Random, seed)),
        2 => Adversary::adaptive(TargetNode::new((seed % 16) as usize, Payload::Zero, seed)),
        _ => Adversary::non_adaptive(
            RandomMatchings::new(seed),
            PayloadCorruptor::new(Payload::Flip, seed),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn det_sqrt_never_errs_within_budget(seed in 0u64..1000, case in 0u8..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = AllToAllInstance::random(16, 2, &mut rng);
        let mut net = Network::new(16, 9, 0.07, adversary_from(case, seed));
        let out = DetSqrt::default().run(&mut net, &inst).unwrap();
        prop_assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn det_hypercube_never_errs_within_budget(seed in 0u64..1000, case in 0u8..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = AllToAllInstance::random(16, 2, &mut rng);
        let mut net = Network::new(16, 9, 0.07, adversary_from(case, seed));
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        prop_assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn unit_routing_delivers_any_instance(
        seed in 0u64..1000,
        payload_bits in 1usize..80,
        k in 1usize..3,
    ) {
        let n = 16usize;
        let instance = RoutingInstance {
            n,
            payload_bits,
            messages: (0..n)
                .flat_map(|u| {
                    (0..k).map(move |j| SuperMessage {
                        src: u,
                        slot: j,
                        payload: BitVec::from_fn(payload_bits, |i| {
                            (i as u64 ^ seed ^ (u + j) as u64).is_multiple_of(3)
                        }),
                        targets: vec![(u + j + 1 + (seed as usize % n)) % n],
                    })
                })
                .collect(),
        };
        let mut net = Network::new(
            n,
            9,
            0.07,
            Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed)),
        );
        let out = route(&mut net, &instance, &RouterConfig::default()).unwrap();
        prop_assert_eq!(out.report.decode_failures, 0);
        for msg in &instance.messages {
            for &t in &msg.targets {
                prop_assert_eq!(
                    out.delivered[t].get(&(msg.src, msg.slot)),
                    Some(&msg.payload)
                );
            }
        }
    }
}
