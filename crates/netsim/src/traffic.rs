//! Per-round message matrices: what nodes intend to send, and what arrives.

use bdclique_bits::BitVec;

/// The messages all nodes intend to send in one round.
///
/// A dense `n × n` matrix of optional frames; a frame is at most
/// `bandwidth` bits. Self-loops are not part of the clique and are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traffic {
    n: usize,
    bandwidth: usize,
    frames: Vec<Option<BitVec>>,
}

impl Traffic {
    /// Creates an empty round of traffic for `n` nodes and a bandwidth of
    /// `bandwidth` bits per ordered pair.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `bandwidth == 0`.
    pub fn new(n: usize, bandwidth: usize) -> Self {
        assert!(n >= 2, "a clique needs at least two nodes");
        assert!(bandwidth > 0, "bandwidth must be positive");
        Self {
            n,
            bandwidth,
            frames: vec![None; n * n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth in bits per ordered pair per round.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    #[inline]
    fn idx(&self, from: usize, to: usize) -> usize {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert_ne!(from, to, "no self-loops in the clique");
        from * self.n + to
    }

    /// Queues `bits` on the edge `from → to`, replacing any previous frame.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids, self-loops, or frames longer than the
    /// bandwidth.
    pub fn send(&mut self, from: usize, to: usize, bits: BitVec) {
        assert!(
            bits.len() <= self.bandwidth,
            "frame of {} bits exceeds bandwidth {}",
            bits.len(),
            self.bandwidth
        );
        let i = self.idx(from, to);
        self.frames[i] = Some(bits);
    }

    /// Removes the frame on `from → to`, if any.
    pub fn clear(&mut self, from: usize, to: usize) {
        let i = self.idx(from, to);
        self.frames[i] = None;
    }

    /// The frame queued on `from → to`.
    pub fn frame(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.frames[self.idx(from, to)].as_ref()
    }

    pub(crate) fn frame_mut_slot(&mut self, from: usize, to: usize) -> &mut Option<BitVec> {
        let i = self.idx(from, to);
        &mut self.frames[i]
    }

    /// Total bits queued this round.
    pub fn total_bits(&self) -> u64 {
        self.frames
            .iter()
            .flatten()
            .map(|f| f.len() as u64)
            .sum()
    }

    /// Number of non-empty frames queued this round.
    pub fn frame_count(&self) -> u64 {
        self.frames.iter().flatten().count() as u64
    }

    pub(crate) fn into_delivery(self) -> Delivery {
        Delivery {
            n: self.n,
            frames: self.frames,
        }
    }
}

/// The messages actually delivered in one round (after adversarial
/// corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    n: usize,
    frames: Vec<Option<BitVec>>,
}

impl Delivery {
    /// The frame node `to` received from node `from`, or `None` when the
    /// sender sent nothing (or the adversary suppressed the frame).
    pub fn received(&self, to: usize, from: usize) -> Option<&BitVec> {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert_ne!(from, to, "no self-loops in the clique");
        self.frames[from * self.n + to].as_ref()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_frame() {
        let mut t = Traffic::new(3, 4);
        t.send(0, 2, BitVec::from_bools(&[true]));
        assert_eq!(t.frame(0, 2), Some(&BitVec::from_bools(&[true])));
        assert_eq!(t.frame(2, 0), None);
        assert_eq!(t.frame_count(), 1);
        assert_eq!(t.total_bits(), 1);
        t.clear(0, 2);
        assert_eq!(t.frame(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "exceeds bandwidth")]
    fn bandwidth_is_enforced() {
        let mut t = Traffic::new(3, 2);
        t.send(0, 1, BitVec::from_bools(&[true, true, false]));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loops_rejected() {
        let mut t = Traffic::new(3, 2);
        t.send(1, 1, BitVec::from_bools(&[true]));
    }

    #[test]
    fn delivery_view_matches_traffic() {
        let mut t = Traffic::new(4, 8);
        t.send(1, 3, BitVec::from_bools(&[false, true]));
        let d = t.into_delivery();
        assert_eq!(d.received(3, 1), Some(&BitVec::from_bools(&[false, true])));
        assert_eq!(d.received(1, 3), None);
        assert_eq!(d.n(), 4);
    }
}
