//! The `AllToAllComm` protocols of Table 1, plus baselines.
//!
//! | Protocol | Paper result | Adversary | Rounds | α regime |
//! |---|---|---|---|---|
//! | [`NaiveExchange`] | — (baseline) | none | 1 | 0 |
//! | [`RelayReplication`] | — (static-FT baseline) | static | `O(R)` | breaks under mobile matchings |
//! | [`NonAdaptiveAllToAll`] | Thm 1.2 | α-NBD | `O(1)` | `Θ(1)` |
//! | [`AdaptiveTakeOne`] | §3 "Take I" | α-ABD | `O(q)` | `Θ̃(1/q)` |
//! | [`AdaptiveAllToAll`] | Thm 1.3 "Take II" | α-ABD | `O(1)`* | `Θ̃(1/(q·t·b))` |
//! | [`DetHypercube`] | Thm 1.4 | α-ABD | `O(log n)` | `Θ(1)` |
//! | [`DetSqrt`] | Thm 1.5 | α-ABD | `O(1)` | `Θ(1/√n)` |
//!
//! (*) asymptotically; see `EXPERIMENTS.md` for the measured constants.

mod adaptive;
mod det_logn;
mod det_sqrt;
mod naive;
mod nonadaptive;
mod relay;

pub use adaptive::{AdaptiveAllToAll, AdaptiveTakeOne};
pub use det_logn::DetHypercube;
pub use det_sqrt::DetSqrt;
pub use naive::NaiveExchange;
pub use nonadaptive::NonAdaptiveAllToAll;
pub use relay::RelayReplication;

use crate::driver::RoundObserver;
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::SharedCodewordCache;
use bdclique_netsim::{Adversary, Network};
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;

/// What one [`ProtocolSession::step`] produced.
#[derive(Debug)]
pub enum Step {
    /// The session advanced (at most one `exchange`) and has more to do.
    Running,
    /// The protocol finished; here is its output.
    Done(AllToAllOutput),
}

/// A protocol execution in flight — the resumable form of
/// [`AllToAllProtocol::run`].
///
/// Sessions are explicit state machines: [`ProtocolSession::step`] advances
/// the protocol by **at most one** network `exchange` (most steps perform
/// exactly one; the step that completes the protocol may perform none, and
/// pure computation is folded into the adjacent exchange's step). This is
/// what lets anything outside the protocol — the [`crate::driver::Driver`]'s
/// observers, a scheduled adversary swap, a round-budget guard — see the
/// network *between* rounds, mirroring how the paper's mobile adversary
/// re-chooses its corrupted edge set every round.
pub trait ProtocolSession {
    /// Advances at most one `exchange`.
    ///
    /// # Errors
    ///
    /// [`CoreError`] on malformed inputs or infeasible parameters for the
    /// network's α, surfaced at the same point in the round sequence as the
    /// former monolithic loops surfaced them.
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError>;

    /// Whether the next [`ProtocolSession::step`] may run a network
    /// `exchange`. The [`crate::driver::Driver`] suppresses its round hooks
    /// before a step that declares it will not — so an exchange-free
    /// output-assembling final step neither shows observers a phantom round
    /// nor trips a round budget set to the session's exact round cost.
    ///
    /// Defaults to `true` (every step is assumed to exchange), which is
    /// correct for any session whose completing step also runs its last
    /// exchange — all the shipped protocols. Override it only for sessions
    /// with exchange-free steps, e.g. a zero-round degenerate instance.
    fn next_step_exchanges(&self) -> bool {
        true
    }

    /// Appends the session's dynamic state to `enc` so the run can later be
    /// resumed via [`AllToAllProtocol::restore_session`].
    ///
    /// Sessions with in-flight event-path work (prefetched encodes,
    /// background decodes) must **quiesce** to a step boundary first — join
    /// or discard speculative jobs so the serialized state describes a
    /// session exactly between two `step` calls — which is why this takes
    /// `&mut self` and `&mut Network` (draining decode jobs reclaims their
    /// deliveries into the network arena). A snapshot must leave the session
    /// in a valid state: continuing to step it afterwards is bit-identical
    /// to never having snapshotted (speculative work re-runs, and it is
    /// pure).
    ///
    /// Only state that cannot be re-derived from the protocol's
    /// configuration belongs in the snapshot; plans, schedules, and codes
    /// are rebuilt at restore (see `bdclique-snapshot`'s crate docs).
    ///
    /// # Errors
    ///
    /// The default declines with [`CoreError::InvalidInput`] — sessions opt
    /// in explicitly.
    fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        let _ = (net, enc);
        Err(CoreError::invalid(
            "this protocol session does not support snapshots",
        ))
    }
}

/// A solution to the `AllToAllComm` problem.
///
/// `Send + Sync` is a supertrait so that a `&dyn AllToAllProtocol` can be
/// shared across the bench harness's parallel trial runners; every protocol
/// here is plain configuration data, and per-run state lives in the session
/// and the network.
///
/// # Implementing
///
/// The one required execution method is [`AllToAllProtocol::session`]:
/// return a [`ProtocolSession`] state machine that performs at most one
/// `exchange` per step. [`AllToAllProtocol::run`] is a default method that
/// loops `step()` to completion — bit-identical to the pre-session
/// monolithic loops (regression-tested), so existing callers are unaffected.
pub trait AllToAllProtocol: Send + Sync {
    /// Short name for reports. Parameterized protocols should report their
    /// configuration (e.g. `relay-replication(x3)`), which is why this is a
    /// [`Cow`] rather than a `&'static str`.
    fn name(&self) -> Cow<'static, str>;

    /// Opens a resumable session for this protocol on `inst`. Validation
    /// that needs no rounds (shape checks, parameter feasibility known up
    /// front) should happen here; no `exchange` may run until the first
    /// [`ProtocolSession::step`].
    ///
    /// Node locality discipline: the session may read `inst.message(u, v)`
    /// only while computing node `u`'s sends, and must route everything
    /// else through `net`.
    ///
    /// # Errors
    ///
    /// [`CoreError`] on malformed inputs or parameters infeasible for the
    /// network's α.
    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError>;

    /// Attaches a shared codeword cache that outlives individual runs, so
    /// repeated executions — e.g. the trials of one bench cell — reuse each
    /// other's Reed–Solomon encodes instead of recomputing them. The cache
    /// is correctness-neutral by construction (content-addressed and
    /// equality-verified; see [`crate::routing::CodewordCache`]), so cached
    /// and uncached runs are bit-identical.
    ///
    /// The default is a no-op: protocols that never encode codewords (the
    /// baselines) simply ignore the handle. Note the hit/miss counters read
    /// back through [`CodewordCache::stats`](crate::routing::CodewordCache::stats)
    /// are *not* deterministic when runs execute concurrently (probe/insert
    /// races reorder them); only the cached content is.
    fn attach_codeword_cache(&mut self, cache: SharedCodewordCache) {
        let _ = cache;
    }

    /// Reopens a session from state serialized by
    /// [`ProtocolSession::snapshot`]. The protocol and instance are the
    /// caller's responsibility (rebuilt from their specs — seeds,
    /// parameters); this method rebuilds the session's derived structure
    /// exactly as [`AllToAllProtocol::session`] would and overlays the
    /// decoded dynamic state, so stepping the restored session is
    /// bit-identical to stepping the original.
    ///
    /// # Errors
    ///
    /// The default declines with [`CoreError::InvalidInput`]; implementors
    /// surface [`CoreError`] on corrupt or mismatched state.
    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        let _ = (net, inst, dec);
        Err(CoreError::invalid(
            "this protocol does not support session restore",
        ))
    }

    /// Runs the protocol to completion by looping [`ProtocolSession::step`].
    ///
    /// # Errors
    ///
    /// [`CoreError`] on malformed inputs or infeasible parameters for the
    /// network's α.
    fn run(&self, net: &mut Network, inst: &AllToAllInstance) -> Result<AllToAllOutput, CoreError> {
        let mut session = self.session(net, inst)?;
        loop {
            match session.step(net)? {
                Step::Running => {}
                Step::Done(out) => return Ok(out),
            }
        }
    }
}

/// Captures a mid-run checkpoint of a protocol execution: the network's
/// full dynamic state followed by the session's, as one versioned snapshot
/// document.
///
/// The session is quiesced first (its [`ProtocolSession::snapshot`] joins
/// or discards in-flight event-path work), so the document describes the
/// run exactly between two steps; the session remains valid and continuing
/// to step it is bit-identical to never having snapshotted.
///
/// The instance, the protocol, and the adversary are *not* serialized —
/// they are rebuilt from their specs at [`restore_run`] (the hybrid rule:
/// behavioral objects are reconstructed, state is overlaid).
///
/// # Errors
///
/// [`CoreError::InvalidInput`] when the session does not support snapshots.
pub fn snapshot_run(
    net: &mut Network,
    session: &mut (dyn ProtocolSession + '_),
) -> Result<Vec<u8>, CoreError> {
    // Session first: quiescing may reclaim frames into the network arena,
    // so it must precede the network capture even though the document
    // stores the network section first (restore needs the network before
    // the session can be rebuilt against it).
    let mut session_enc = Enc::new();
    session.snapshot(net, &mut session_enc)?;
    let mut enc = Enc::with_header();
    net.snapshot(&mut enc);
    enc.put_bytes(session_enc.bytes());
    Ok(enc.into_bytes())
}

/// Reopens a checkpoint written by [`snapshot_run`]: restores the network
/// (overlaying the serialized dynamic state onto `adversary`, which the
/// caller rebuilt from its spec) and the protocol session, positioned to
/// continue bit-identically with the uninterrupted run.
///
/// `protocol` and `inst` must be the same configuration the snapshotted run
/// used — typically re-derived from the same seeds.
///
/// # Errors
///
/// [`CoreError`] on corrupt documents, adversary-kind mismatches, or
/// protocols without restore support.
pub fn restore_run<'a>(
    bytes: &[u8],
    adversary: Adversary,
    protocol: &'a dyn AllToAllProtocol,
    inst: &'a AllToAllInstance,
) -> Result<(Network, Box<dyn ProtocolSession + 'a>), CoreError> {
    let mut dec = Dec::with_header(bytes).map_err(CoreError::from)?;
    let net = Network::restore(&mut dec, adversary)?;
    let session_bytes = dec.get_bytes()?;
    dec.finish()?;
    let mut session_dec = Dec::new(session_bytes);
    let session = protocol.restore_session(&net, inst, &mut session_dec)?;
    session_dec.finish()?;
    Ok((net, session))
}

/// Outcome of running a protocol against an instance on a network.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Protocol name (possibly carrying its parameterization).
    pub protocol: Cow<'static, str>,
    /// Wrong or missing messages out of `n²`.
    pub errors: usize,
    /// Network rounds consumed.
    pub rounds: u64,
    /// Total bits put on the wire by honest nodes.
    pub bits_sent: u64,
    /// Corrupted (edge, round) slots the adversary used.
    pub edges_corrupted: u64,
}

/// Runs `protocol` and scores the result against the instance.
///
/// # Errors
///
/// Propagates protocol errors.
pub fn run_and_score(
    protocol: &dyn AllToAllProtocol,
    net: &mut Network,
    inst: &AllToAllInstance,
) -> Result<Outcome, CoreError> {
    run_and_score_with(protocol, net, inst, &mut [])
}

/// Runs `protocol` under the [`crate::driver::Driver`] with the given round
/// observers and scores the result — the entry point through which per-round
/// traces, round budgets, and adversary schedules reach the bench harness.
///
/// # Errors
///
/// Propagates protocol errors and observer aborts.
pub fn run_and_score_with(
    protocol: &dyn AllToAllProtocol,
    net: &mut Network,
    inst: &AllToAllInstance,
    observers: &mut [&mut dyn RoundObserver],
) -> Result<Outcome, CoreError> {
    let rounds_before = net.rounds();
    let bits_before = net.stats().bits_sent;
    let corrupted_before = net.stats().edges_corrupted;
    let output = crate::driver::Driver::with_observers(observers).run(protocol, net, inst)?;
    Ok(Outcome {
        protocol: protocol.name(),
        errors: inst.count_errors(&output),
        rounds: net.rounds() - rounds_before,
        bits_sent: net.stats().bits_sent - bits_before,
        edges_corrupted: net.stats().edges_corrupted - corrupted_before,
    })
}
