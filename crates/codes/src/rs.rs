//! Systematic Reed–Solomon codes with errors-and-erasures decoding.
//!
//! The resilient super-message routing scheme (Theorem 4.1) encodes every
//! super-message with a constant-rate, constant-distance code and scatters
//! one codeword symbol per node. Positions suppressed by the
//! `InLoad`/`OutLoad` = 1 filters are *known* to the receiver and are treated
//! as erasures, which doubles their correction efficiency: the decoder
//! corrects any pattern of `e` errors and `f` erasures with `2e + f < n-k+1`.

use crate::error::CodeError;
use crate::gf::Gf;
use crate::traits::SymbolCode;

/// A systematic Reed–Solomon code `[n, k]` over GF(2^m).
///
/// The codeword layout is *message first*: symbols `0..k` are the message,
/// symbols `k..n` are parity. Decoding is Berlekamp–Massey with the
/// Forney-style erasure initialization, correcting `e` errors plus `f`
/// erasures whenever `2e + f ≤ n - k`.
///
/// # Examples
///
/// ```
/// use bdclique_codes::{ReedSolomon, SymbolCode};
///
/// let rs = ReedSolomon::new(8, 16, 8).unwrap();
/// let msg: Vec<u16> = (0..8).collect();
/// let mut cw = rs.encode(&msg).unwrap();
/// cw[0] ^= 0xff; // error
/// cw[5] ^= 0x0f; // error
/// let erasures = vec![false; 16];
/// assert_eq!(rs.decode(&cw, &erasures).unwrap(), msg);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf,
    n: usize,
    k: usize,
    /// The generator polynomial `g(x) = ∏_{j=1}^{n−k} (x − α^j)` without its
    /// (monic) leading term — the LFSR feedback taps used by the systematic
    /// encoder.
    gen_taps: Vec<u16>,
}

impl ReedSolomon {
    /// Builds an `[n, k]` Reed–Solomon code over GF(2^m).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::LengthMismatch`] when `k == 0`, `k >= n`, or
    /// `n > 2^m - 1` (the maximum Reed–Solomon length for the field).
    pub fn new(m: u32, n: usize, k: usize) -> Result<Self, CodeError> {
        let gf = Gf::new(m);
        if k == 0 || k >= n || n > gf.order() as usize {
            return Err(CodeError::LengthMismatch {
                expected: gf.order() as usize,
                actual: n,
            });
        }
        // g(x) = prod_{j=1}^{n-k} (x - alpha^j)
        let mut generator = vec![1u16];
        for j in 1..=(n - k) as u32 {
            generator = gf.poly_mul(&generator, &[gf.alpha_pow(j), 1]);
        }
        let gen_taps = generator[..n - k].to_vec();
        Ok(Self { gf, n, k, gen_taps })
    }

    /// The underlying field.
    pub fn field(&self) -> &Gf {
        &self.gf
    }

    /// Number of parity symbols `n - k` (= design distance − 1).
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of correctable errors with no erasures.
    pub fn error_capacity(&self) -> usize {
        (self.n - self.k) / 2
    }

    fn syndromes(&self, word: &[u16]) -> Vec<u16> {
        // S_j = word(alpha^j) for j = 1..=n-k; stored 0-indexed.
        (1..=(self.n - self.k) as u32)
            .map(|j| self.gf.poly_eval(word, self.gf.alpha_pow(j)))
            .collect()
    }

    /// Decodes and also reports which positions were corrected.
    ///
    /// Returns `(message, corrected_positions)`.
    ///
    /// # Errors
    ///
    /// Same as [`SymbolCode::decode`].
    pub fn decode_detailed(
        &self,
        received: &[u16],
        erasures: &[bool],
    ) -> Result<(Vec<u16>, Vec<usize>), CodeError> {
        if received.len() != self.n {
            return Err(CodeError::LengthMismatch {
                expected: self.n,
                actual: received.len(),
            });
        }
        if erasures.len() != self.n {
            return Err(CodeError::LengthMismatch {
                expected: self.n,
                actual: erasures.len(),
            });
        }
        if received.iter().fold(0u16, |acc, &s| acc | s) as u32 >= self.gf.size() {
            let &value = received
                .iter()
                .find(|&&s| s as u32 >= self.gf.size())
                .expect("fold saw an out-of-range bit");
            return Err(CodeError::SymbolOutOfRange {
                value,
                alphabet: self.gf.size(),
            });
        }
        let gf = &self.gf;
        let two_t = self.n - self.k;

        // Convert the public (message-first) layout into coefficient order:
        // the codeword polynomial has parity in coefficients 0..two_t and
        // the message in coefficients two_t..n. Position i then has locator
        // X_i = alpha^i.
        let to_coeff = |pub_pos: usize| {
            if pub_pos < self.k {
                pub_pos + two_t
            } else {
                pub_pos - self.k
            }
        };
        let to_public = |coeff_pos: usize| {
            if coeff_pos < two_t {
                coeff_pos + self.k
            } else {
                coeff_pos - two_t
            }
        };
        let mut word = vec![0u16; self.n];
        let mut eras_coeff = vec![false; self.n];
        for (pub_pos, &sym) in received.iter().enumerate() {
            word[to_coeff(pub_pos)] = sym;
            eras_coeff[to_coeff(pub_pos)] = erasures[pub_pos];
        }
        let erased: Vec<usize> = (0..self.n).filter(|&i| eras_coeff[i]).collect();
        let f = erased.len();
        if f > two_t {
            return Err(CodeError::TooManyErrors {
                context: "more erasures than parity symbols",
            });
        }
        for &i in &erased {
            word[i] = 0;
        }

        let synd = self.syndromes(&word);
        if synd.iter().all(|&s| s == 0) {
            // Already a codeword (erasure corrections are all zero).
            return Ok((word[two_t..].to_vec(), vec![]));
        }

        // Erasure locator Gamma(x) = prod (1 - X_i x); char 2 => (1 + X_i x).
        let mut lambda = vec![0u16; two_t + 2];
        lambda[0] = 1;
        let mut deg_lambda = 0usize;
        for &pos in &erased {
            let x_i = gf.alpha_pow(pos as u32);
            // lambda *= (1 + X_i x)
            for d in (0..=deg_lambda).rev() {
                let add = gf.mul(lambda[d], x_i);
                lambda[d + 1] ^= add;
            }
            deg_lambda += 1;
        }

        // Berlekamp–Massey with erasure initialization.
        let mut b = lambda.clone();
        let mut el = f;
        for r in (f + 1)..=two_t {
            // discrepancy = sum_i lambda[i] * S_{r-i} (S is 1-indexed).
            let mut discr = 0u16;
            for i in 0..=deg_lambda.min(r - 1) {
                discr ^= gf.mul(lambda[i], synd[r - 1 - i]);
            }
            if discr == 0 {
                // b *= x
                b.rotate_right(1);
                b[0] = 0;
            } else {
                // T = lambda - discr * x * b
                let mut t = lambda.clone();
                let blen = b.len() - 1;
                gf.axpy(&mut t[1..], discr, &b[..blen]);
                if 2 * el < r + f {
                    el = r + f - el;
                    let dinv = gf.inv(discr).expect("nonzero discrepancy");
                    b = lambda.clone();
                    gf.mul_slice(&mut b, dinv);
                    lambda = t;
                } else {
                    lambda = t;
                    b.rotate_right(1);
                    b[0] = 0;
                }
                deg_lambda = lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
            }
        }

        let nu = deg_lambda;
        if nu > two_t {
            return Err(CodeError::TooManyErrors {
                context: "locator degree exceeds parity budget",
            });
        }

        // Chien search: roots of lambda among {X_i^{-1}} for i in 0..n.
        // Incremental stepping: term d holds lambda_d·alpha^{-d·i}; moving
        // i → i+1 multiplies term d by the fixed factor alpha^{-d}, so each
        // position costs nu products and one xor-fold — no per-position
        // inversion or Horner call.
        let mut positions = Vec::with_capacity(nu);
        let mut terms: Vec<u16> = lambda[..=nu].to_vec();
        let steps: Vec<u16> = (0..=nu as u32)
            .map(|d| gf.inv(gf.alpha_pow(d)).expect("alpha powers are nonzero"))
            .collect();
        if let Some((table, shift)) = gf.full_mul_table() {
            // m ≤ 8: one hoisted table row per step factor — the inner
            // update is a pure lookup chain.
            let rows: Vec<&[u16]> = steps
                .iter()
                .map(|&s| &table[(s as usize) << shift..])
                .collect();
            for i in 0..self.n {
                if terms.iter().fold(0u16, |acc, &t| acc ^ t) == 0 {
                    positions.push(i);
                }
                for (t, row) in terms.iter_mut().zip(&rows).skip(1) {
                    *t = row[*t as usize];
                }
            }
        } else {
            for i in 0..self.n {
                if terms.iter().fold(0u16, |acc, &t| acc ^ t) == 0 {
                    positions.push(i);
                }
                for (t, &s) in terms.iter_mut().zip(&steps).skip(1) {
                    *t = gf.mul(*t, s);
                }
            }
        }
        if positions.len() != nu {
            return Err(CodeError::TooManyErrors {
                context: "locator roots do not match degree",
            });
        }

        // Omega(x) = S(x) * lambda(x) mod x^{2t}, with S(x) = sum S_j x^{j-1}.
        let mut omega = vec![0u16; two_t];
        for (i, &li) in lambda.iter().enumerate().take(nu + 1).take(two_t) {
            if li == 0 {
                continue;
            }
            gf.axpy(&mut omega[i..], li, &synd[..two_t - i]);
        }
        let lambda_deriv = gf.poly_derivative(&lambda[..=nu]);

        // Forney: e_i = Omega(X_i^{-1}) / lambda'(X_i^{-1}).
        let mut corrected = Vec::new();
        let mut magnitudes = Vec::new();
        for &pos in &positions {
            let x_inv = gf.inv(gf.alpha_pow(pos as u32)).expect("nonzero");
            let num = gf.poly_eval(&omega, x_inv);
            let den = gf.poly_eval(&lambda_deriv, x_inv);
            let Some(e) = gf.div(num, den) else {
                return Err(CodeError::TooManyErrors {
                    context: "Forney denominator vanished",
                });
            };
            if e != 0 {
                word[pos] ^= e;
                corrected.push(pos);
                magnitudes.push(e);
            }
        }

        // Verify: the corrected word must be a codeword and the number of
        // non-erasure corrections must be within capacity. Syndromes are
        // linear, so instead of a second full Horner pass over the word, the
        // applied corrections must reproduce the original syndromes exactly:
        // S_j = sum over corrections of e·alpha^{j·pos}.
        let mut synd_delta = vec![0u16; two_t];
        for (&pos, &e) in corrected.iter().zip(&magnitudes) {
            let x = gf.alpha_pow(pos as u32);
            let mut p = x;
            for d in &mut synd_delta {
                *d ^= gf.mul(e, p);
                p = gf.mul(p, x);
            }
        }
        if synd_delta != synd {
            return Err(CodeError::TooManyErrors {
                context: "post-correction syndromes nonzero",
            });
        }
        let genuine_errors = corrected.iter().filter(|p| !eras_coeff[**p]).count();
        if 2 * genuine_errors + f > two_t {
            return Err(CodeError::TooManyErrors {
                context: "corrections exceed 2e+f budget",
            });
        }
        let corrected_public = corrected.into_iter().map(to_public).collect();
        Ok((word[two_t..].to_vec(), corrected_public))
    }
}

impl SymbolCode for ReedSolomon {
    fn message_len(&self) -> usize {
        self.k
    }

    fn codeword_len(&self) -> usize {
        self.n
    }

    fn symbol_bits(&self) -> u32 {
        self.gf.m()
    }

    fn distance(&self) -> usize {
        self.n - self.k + 1
    }

    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
        if msg.len() != self.k {
            return Err(CodeError::LengthMismatch {
                expected: self.k,
                actual: msg.len(),
            });
        }
        // OR-fold range check: one vectorizable pass, offender located only
        // on the (cold) error path.
        if msg.iter().fold(0u16, |acc, &s| acc | s) as u32 >= self.gf.size() {
            let &value = msg
                .iter()
                .find(|&&s| s as u32 >= self.gf.size())
                .expect("fold saw an out-of-range bit");
            return Err(CodeError::SymbolOutOfRange {
                value,
                alphabet: self.gf.size(),
            });
        }
        // Codeword polynomial layout: low coefficients 0..n-k are parity
        // (= m(x)·x^{n-k} mod g), coefficients n-k..n are the message
        // (systematic). Run the division as an LFSR over the generator's
        // feedback taps — one shift plus one axpy per message symbol, no
        // intermediate polynomial allocations.
        let two_t = self.n - self.k;
        let mut parity = vec![0u16; two_t];
        if let Some((table, shift)) = self.gf.full_mul_table() {
            // m ≤ 8: the feedback products are one table row per symbol;
            // fuse the shift and the tap xor into a single backward sweep.
            for &sym in msg.iter().rev() {
                let fb = (sym ^ parity[two_t - 1]) as usize;
                let row = &table[fb << shift..];
                for i in (1..two_t).rev() {
                    parity[i] = parity[i - 1] ^ row[self.gen_taps[i] as usize];
                }
                parity[0] = row[self.gen_taps[0] as usize];
            }
        } else {
            for &sym in msg.iter().rev() {
                let fb = sym ^ parity[two_t - 1];
                parity.copy_within(..two_t - 1, 1);
                parity[0] = 0;
                self.gf.axpy(&mut parity, fb, &self.gen_taps);
            }
        }
        // Present message-first, parity in coefficient order.
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(msg);
        out.extend_from_slice(&parity);
        Ok(out)
    }

    fn decode(&self, received: &[u16], erasures: &[bool]) -> Result<Vec<u16>, CodeError> {
        self.decode_detailed(received, erasures).map(|(msg, _)| msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn roundtrip_case(m: u32, n: usize, k: usize, errors: &[usize], erasures: &[usize]) {
        let rs = ReedSolomon::new(m, n, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64((m as u64) << 32 | (n as u64) << 16 | k as u64);
        let msg: Vec<u16> = (0..k)
            .map(|_| rng.gen_range(0..rs.field().size()) as u16)
            .collect();
        let cw = rs.encode(&msg).unwrap();
        let mut recv = cw.clone();
        let mut eras = vec![false; n];
        for &p in errors {
            let mut delta = 0;
            while delta == 0 {
                delta = rng.gen_range(1..rs.field().size()) as u16;
            }
            recv[p] ^= delta;
        }
        for &p in erasures {
            eras[p] = true;
            recv[p] = rng.gen_range(0..rs.field().size()) as u16; // garbage
        }
        let decoded = rs
            .decode(&recv, &eras)
            .unwrap_or_else(|e| panic!("decode failed for e={errors:?}, f={erasures:?}: {e}"));
        assert_eq!(decoded, msg, "e={errors:?}, f={erasures:?}");
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(8, 12, 5).unwrap();
        let msg = vec![10, 20, 30, 40, 50];
        let cw = rs.encode(&msg).unwrap();
        assert_eq!(&cw[..5], msg.as_slice());
        assert_eq!(cw.len(), 12);
    }

    #[test]
    fn clean_word_decodes() {
        roundtrip_case(8, 20, 10, &[], &[]);
    }

    #[test]
    fn corrects_up_to_capacity_errors() {
        // [16, 8]: t = 4.
        roundtrip_case(8, 16, 8, &[0], &[]);
        roundtrip_case(8, 16, 8, &[0, 15], &[]);
        roundtrip_case(8, 16, 8, &[1, 7, 9], &[]);
        roundtrip_case(8, 16, 8, &[0, 3, 8, 12], &[]);
    }

    #[test]
    fn corrects_erasures_only() {
        // [16, 8]: up to 8 erasures.
        roundtrip_case(8, 16, 8, &[], &[0, 1, 2, 3, 4, 5, 6, 7]);
        roundtrip_case(8, 16, 8, &[], &[9]);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures() {
        // 2e + f <= 8.
        roundtrip_case(8, 16, 8, &[0], &[5, 6, 7, 8, 9, 10]); // 2+6=8
        roundtrip_case(8, 16, 8, &[2, 11], &[4, 5, 6, 7]); // 4+4=8
        roundtrip_case(8, 16, 8, &[1, 6, 13], &[0, 15]); // 6+2=8
    }

    #[test]
    fn exhaustive_small_code_budget_sweep() {
        // RS[15, 5] over GF(16): 2e + f <= 10.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for e in 0..=5usize {
            for f in 0..=(10 - 2 * e) {
                for _ in 0..20 {
                    let mut positions: Vec<usize> = (0..15).collect();
                    for i in (1..positions.len()).rev() {
                        positions.swap(i, rng.gen_range(0..=i));
                    }
                    let errs: Vec<usize> = positions[..e].to_vec();
                    let ers: Vec<usize> = positions[e..e + f].to_vec();
                    roundtrip_case(4, 15, 5, &errs, &ers);
                }
            }
        }
    }

    #[test]
    fn beyond_capacity_is_detected_or_wrong_but_flagged() {
        let rs = ReedSolomon::new(8, 16, 8).unwrap();
        let msg: Vec<u16> = (0..8).collect();
        let cw = rs.encode(&msg).unwrap();
        let mut recv = cw.clone();
        for p in 0..6 {
            recv[p] ^= 0x33; // 6 errors > t = 4
        }
        let eras = vec![false; 16];
        match rs.decode(&recv, &eras) {
            // Either an explicit failure…
            Err(CodeError::TooManyErrors { .. }) => {}
            // …or a miscorrection to a *valid* codeword (unavoidable for any
            // bounded-distance decoder); it must differ from the original.
            Ok(m) => assert_ne!(m, msg),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(4, 16, 4).is_err()); // n > 2^4 - 1
        assert!(ReedSolomon::new(8, 10, 10).is_err()); // k == n
        assert!(ReedSolomon::new(8, 10, 0).is_err());
    }

    #[test]
    fn decode_detailed_reports_positions() {
        let rs = ReedSolomon::new(8, 16, 8).unwrap();
        let msg: Vec<u16> = (10..18).collect();
        let cw = rs.encode(&msg).unwrap();
        let mut recv = cw.clone();
        recv[3] ^= 1;
        recv[12] ^= 7;
        let (m, pos) = rs.decode_detailed(&recv, &[false; 16]).unwrap();
        assert_eq!(m, msg);
        let mut pos = pos;
        pos.sort_unstable();
        assert_eq!(pos, vec![3, 12]);
    }

    #[test]
    fn large_field_large_block() {
        // [255, 191] over GF(256): t = 32.
        let rs = ReedSolomon::new(8, 255, 191).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let msg: Vec<u16> = (0..191).map(|_| rng.gen_range(0..256)).collect();
        let cw = rs.encode(&msg).unwrap();
        let mut recv = cw.clone();
        for p in (0..255).step_by(8).take(32) {
            recv[p] ^= 0x5a;
        }
        assert_eq!(rs.decode(&recv, &vec![false; 255]).unwrap(), msg);
    }
}
