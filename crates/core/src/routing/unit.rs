//! The scheduled unit-instance routing engine.
//!
//! Messages are greedily colored into *stages* such that within a stage
//! every node is the source of at most one active message and the target of
//! at most one active message (multi-target messages deliver to all their
//! targets in one stage). Each stage runs the two-round scatter/gather of
//! the paper's Section 3 warm-up observation: the source spreads one
//! Reed–Solomon symbol per relay node, then relays forward to the targets.
//! Per codeword the adversary corrupts at most `⌊αn⌋` symbols in each of the
//! two rounds, against a decoding radius of `(L - k)/2` chosen as
//! `2⌊αn⌋ + slack`; suppressed frames are decoded as erasures.
//!
//! When the network bandwidth exceeds one wire slot (`symbol_bits + 1`),
//! multiple stages and payload chunks run in parallel inside a single round
//! pair — the `B`-fold speedup of Lemma 2.9 / Theorem 4.1.

use super::{EngineUsed, RouterConfig, RoutingInstance, RoutingOutput, RoutingReport};
use crate::error::CoreError;
use bdclique_bits::BitVec;
use bdclique_codes::{BitCode, ReedSolomon};
use bdclique_netsim::Network;
use std::borrow::Cow;
use std::collections::HashMap;

/// Greedy stage coloring: same-source or shared-target messages never share
/// a stage. Returns `stage_of[msg_idx]`.
pub(crate) fn schedule_stages(instance: &RoutingInstance) -> Vec<usize> {
    let mut stage_of = vec![usize::MAX; instance.messages.len()];
    // Per-stage occupancy: sources and targets.
    let mut stage_sources: Vec<Vec<bool>> = Vec::new();
    let mut stage_targets: Vec<Vec<bool>> = Vec::new();
    for (idx, m) in instance.messages.iter().enumerate() {
        let mut stage = 0usize;
        loop {
            if stage == stage_sources.len() {
                stage_sources.push(vec![false; instance.n]);
                stage_targets.push(vec![false; instance.n]);
            }
            let src_free = !stage_sources[stage][m.src];
            let tgts_free = m.targets.iter().all(|&t| !stage_targets[stage][t]);
            if src_free && tgts_free {
                stage_sources[stage][m.src] = true;
                for &t in &m.targets {
                    stage_targets[stage][t] = true;
                }
                stage_of[idx] = stage;
                break;
            }
            stage += 1;
        }
    }
    stage_of
}

struct UnitParams {
    /// Relay count = codeword length.
    l: usize,
    /// RS message symbols per codeword.
    k_rs: usize,
    /// The code.
    code: ReedSolomon,
    /// Payload bits per chunk.
    cap_bits: usize,
    /// Chunks per message.
    chunks: usize,
    /// Wire slot width: symbol + validity bit.
    slot: usize,
    /// Parallel lanes per round pair.
    lanes: usize,
}

fn derive_params(
    net: &Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<UnitParams, CoreError> {
    let m = cfg.symbol_bits;
    if !(2..=8).contains(&m) {
        return Err(CoreError::invalid("symbol_bits must be in 2..=8"));
    }
    let slot = m as usize + 1;
    if net.bandwidth() < slot {
        return Err(CoreError::infeasible(format!(
            "bandwidth {} < wire slot {} (symbol + validity bit)",
            net.bandwidth(),
            slot
        )));
    }
    let l = instance.n.min((1usize << m) - 1);
    let e_allow = 2 * net.fault_budget() + cfg.extra_error_slack;
    if l <= 2 * e_allow {
        return Err(CoreError::infeasible(format!(
            "relay count {l} cannot absorb 2·({e_allow}) adversarial symbols"
        )));
    }
    let k_rs = l - 2 * e_allow;
    let code = ReedSolomon::new(m, l, k_rs)
        .map_err(|e| CoreError::infeasible(format!("RS construction: {e}")))?;
    let cap_bits = k_rs * m as usize;
    let chunks = instance.payload_bits.div_ceil(cap_bits).max(1);
    let lanes = (net.bandwidth() / slot).max(1);
    Ok(UnitParams {
        l,
        k_rs,
        code,
        cap_bits,
        chunks,
        slot,
        lanes,
    })
}

/// Which half of a stage/chunk pack the session will execute next.
enum UnitPhase {
    /// Scatter codeword symbols to relays.
    RoundA,
    /// Relays forward to targets; `relay_val[(lane, msg, w)]` carries what
    /// each relay holds after round A.
    RoundB {
        relay_val: HashMap<(usize, usize, usize), Option<u16>>,
    },
}

/// The unit engine as a resumable session: every [`UnitSession::step`]
/// executes exactly one `exchange` (round A or round B of the current
/// stage/chunk pack); the step that completes the final pack also assembles
/// the output. The round-for-round behavior is identical to the former
/// monolithic loop — the state between exchanges is what used to live in
/// that loop's locals.
pub(crate) struct UnitSession<'i> {
    /// Borrowed for the zero-copy [`super::route`] path, owned when a
    /// protocol session hands a wave over.
    instance: Cow<'i, RoutingInstance>,
    symbol_bits: u32,
    params: UnitParams,
    num_stages: usize,
    stage_msgs: Vec<Vec<usize>>,
    stage_src_msg: Vec<HashMap<usize, usize>>,
    codewords: Vec<Vec<Vec<u16>>>,
    /// Work units: (stage, chunk) pairs, executed `lanes` at a time.
    work: Vec<(usize, usize)>,
    /// Start of the current pack within `work`.
    pack_start: usize,
    phase: UnitPhase,
    /// Accumulated decoded chunks per (target, msg_idx).
    chunk_store: HashMap<(usize, usize), Vec<Option<BitVec>>>,
    delivered: Vec<HashMap<(usize, usize), BitVec>>,
    decode_failures: usize,
    rounds_before: u64,
    /// Set once the output has been assembled; stepping again is an error
    /// (the drained state could otherwise masquerade as an empty result).
    finished: bool,
}

impl<'i> UnitSession<'i> {
    /// Validates parameters, schedules stages, and pre-encodes codewords.
    /// No rounds run until the first [`UnitSession::step`].
    pub(crate) fn new(
        net: &Network,
        instance: Cow<'i, RoutingInstance>,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        let n = instance.n;
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let params = derive_params(net, &instance, cfg)?;
        let stage_of = schedule_stages(&instance);
        let num_stages = stage_of.iter().map(|&s| s + 1).max().unwrap_or(0);

        let mut delivered: Vec<HashMap<(usize, usize), BitVec>> = vec![HashMap::new(); n];
        // Local deliveries (target == src) never touch the network.
        for msg in &instance.messages {
            if msg.targets.contains(&msg.src) {
                delivered[msg.src].insert((msg.src, msg.slot), msg.payload.clone());
            }
        }

        // Precompute padded payloads and per-chunk codewords.
        let mut codewords: Vec<Vec<Vec<u16>>> = Vec::with_capacity(instance.messages.len());
        for msg in &instance.messages {
            let mut padded = msg.payload.clone();
            padded.pad_to(params.chunks * params.cap_bits);
            let mut per_chunk = Vec::with_capacity(params.chunks);
            for c in 0..params.chunks {
                let chunk = padded.slice(c * params.cap_bits, (c + 1) * params.cap_bits);
                let cw = params
                    .code
                    .encode_bits(&chunk)
                    .map_err(|e| CoreError::invalid(format!("encode: {e}")))?;
                per_chunk.push(cw);
            }
            codewords.push(per_chunk);
        }

        let mut work: Vec<(usize, usize)> = Vec::new();
        for s in 0..num_stages {
            for c in 0..params.chunks {
                work.push((s, c));
            }
        }

        // Messages grouped by stage for quick lookup; within a stage,
        // sources are distinct, so a per-stage source → message map lets
        // relays attribute an incoming frame in O(1).
        let mut stage_msgs: Vec<Vec<usize>> = vec![Vec::new(); num_stages];
        let mut stage_src_msg: Vec<HashMap<usize, usize>> = vec![HashMap::new(); num_stages];
        for (idx, &s) in stage_of.iter().enumerate() {
            stage_msgs[s].push(idx);
            stage_src_msg[s].insert(instance.messages[idx].src, idx);
        }

        let _ = params.k_rs;
        Ok(Self {
            instance,
            symbol_bits: cfg.symbol_bits,
            params,
            num_stages,
            stage_msgs,
            stage_src_msg,
            codewords,
            work,
            pack_start: 0,
            phase: UnitPhase::RoundA,
            chunk_store: HashMap::new(),
            delivered,
            decode_failures: 0,
            rounds_before: net.rounds(),
            finished: false,
        })
    }

    fn pack(&self) -> &[(usize, usize)] {
        let end = (self.pack_start + self.params.lanes).min(self.work.len());
        &self.work[self.pack_start..end]
    }

    /// Advances one exchange; `Some(output)` when the final pack is done.
    pub(crate) fn step(&mut self, net: &mut Network) -> Result<Option<RoutingOutput>, CoreError> {
        if self.finished {
            return Err(CoreError::invalid(
                "routing session stepped after completion",
            ));
        }
        if self.pack_start >= self.work.len() {
            return Ok(Some(self.finish(net)));
        }
        let params = &self.params;
        let pack: Vec<(usize, usize)> = self.pack().to_vec();
        match std::mem::replace(&mut self.phase, UnitPhase::RoundA) {
            UnitPhase::RoundA => {
                // ---- Round A: scatter codeword symbols to relays. ----
                let mut traffic = net.traffic();
                // Symbols a source keeps for itself (it is its own relay),
                // keyed (lane, msg).
                let mut src_local: HashMap<(usize, usize), u16> = HashMap::new();
                let mut frames_a: HashMap<(usize, usize), BitVec> = HashMap::new();
                for (lane, &(stage, chunk)) in pack.iter().enumerate() {
                    for &mi in &self.stage_msgs[stage] {
                        let msg = &self.instance.messages[mi];
                        let cw = &self.codewords[mi][chunk];
                        for (sym_idx, &sym) in cw.iter().enumerate().take(params.l) {
                            let w = sym_idx;
                            if w == msg.src {
                                src_local.insert((lane, mi), sym);
                                continue;
                            }
                            let frame = frames_a
                                .entry((msg.src, w))
                                .or_insert_with(|| net.frame_buffer(params.lanes * params.slot));
                            frame.set(lane * params.slot, true); // validity
                            frame.write_uint(lane * params.slot + 1, self.symbol_bits, sym as u64);
                        }
                    }
                }
                for ((from, to), frame) in frames_a {
                    traffic.send(from, to, frame);
                }
                let delivery_a = net.exchange(traffic);

                // ---- Relay bookkeeping: relay_val[(lane, msg, w)] = symbol.
                // A relay holds one symbol per active message in the stage
                // (sources are distinct within a stage, so the round-A frame
                // identifies the message). Walking each relay's inbox costs
                // O(frames received); absent map entries read back as `None`
                // downstream.
                let mut relay_val: HashMap<(usize, usize, usize), Option<u16>> = HashMap::new();
                for (lane, &(stage, _chunk)) in pack.iter().enumerate() {
                    for &mi in &self.stage_msgs[stage] {
                        let msg = &self.instance.messages[mi];
                        if msg.src < params.l {
                            // The source is its own relay for position src.
                            relay_val
                                .insert((lane, mi, msg.src), src_local.get(&(lane, mi)).copied());
                        }
                    }
                }
                for w in 0..params.l.min(self.instance.n) {
                    for (src, f) in delivery_a.inbox_of(w) {
                        for (lane, &(stage, _chunk)) in pack.iter().enumerate() {
                            let Some(&mi) = self.stage_src_msg[stage].get(&src) else {
                                continue;
                            };
                            if f.len() >= (lane + 1) * params.slot && f.get(lane * params.slot) {
                                let sym =
                                    f.read_uint(lane * params.slot + 1, self.symbol_bits) as u16;
                                relay_val.insert((lane, mi, w), Some(sym));
                            }
                        }
                    }
                }
                net.reclaim(delivery_a);
                self.phase = UnitPhase::RoundB { relay_val };
                Ok(None)
            }
            UnitPhase::RoundB { relay_val } => {
                // ---- Round B: relays forward to targets. ----
                let mut traffic = net.traffic();
                let mut frames_b: HashMap<(usize, usize), BitVec> = HashMap::new();
                for (lane, &(stage, _chunk)) in pack.iter().enumerate() {
                    for &mi in &self.stage_msgs[stage] {
                        let msg = &self.instance.messages[mi];
                        for &x in &msg.targets {
                            if x == msg.src {
                                continue; // delivered locally already
                            }
                            for w in 0..params.l {
                                if w == x {
                                    continue; // target reads its own relay value
                                }
                                let val = relay_val.get(&(lane, mi, w)).copied().flatten();
                                let frame = frames_b.entry((w, x)).or_insert_with(|| {
                                    net.frame_buffer(params.lanes * params.slot)
                                });
                                if let Some(sym) = val {
                                    frame.set(lane * params.slot, true);
                                    frame.write_uint(
                                        lane * params.slot + 1,
                                        self.symbol_bits,
                                        sym as u64,
                                    );
                                }
                            }
                        }
                    }
                }
                for ((from, to), frame) in frames_b {
                    traffic.send(from, to, frame);
                }
                let delivery_b = net.exchange(traffic);

                // ---- Decode at targets. ----
                for (lane, &(stage, chunk)) in pack.iter().enumerate() {
                    for &mi in &self.stage_msgs[stage] {
                        let msg = &self.instance.messages[mi];
                        for &x in &msg.targets {
                            if x == msg.src {
                                continue;
                            }
                            let mut received = vec![0u16; params.l];
                            let mut erasures = vec![false; params.l];
                            for w in 0..params.l {
                                let val =
                                    if w == x {
                                        relay_val.get(&(lane, mi, w)).copied().flatten()
                                    } else {
                                        match delivery_b.received(x, w) {
                                            Some(f)
                                                if f.len() >= (lane + 1) * params.slot
                                                    && f.get(lane * params.slot) =>
                                            {
                                                Some(f.read_uint(
                                                    lane * params.slot + 1,
                                                    self.symbol_bits,
                                                )
                                                    as u16)
                                            }
                                            _ => None,
                                        }
                                    };
                                match val {
                                    Some(sym) => received[w] = sym,
                                    None => erasures[w] = true,
                                }
                            }
                            let slot_entry = self
                                .chunk_store
                                .entry((x, mi))
                                .or_insert_with(|| vec![None; params.chunks]);
                            match params
                                .code
                                .decode_bits(&received, &erasures, params.cap_bits)
                            {
                                Ok(bits) => slot_entry[chunk] = Some(bits),
                                Err(_) => {
                                    self.decode_failures += 1;
                                    slot_entry[chunk] = Some(BitVec::zeros(params.cap_bits));
                                }
                            }
                        }
                    }
                }
                net.reclaim(delivery_b);
                self.pack_start += params.lanes;
                self.phase = UnitPhase::RoundA;
                if self.pack_start >= self.work.len() {
                    return Ok(Some(self.finish(net)));
                }
                Ok(None)
            }
        }
    }

    /// Assembles the chunked payloads into the final output.
    fn finish(&mut self, net: &Network) -> RoutingOutput {
        self.finished = true;
        let mut delivered = std::mem::take(&mut self.delivered);
        for ((x, mi), chunks) in std::mem::take(&mut self.chunk_store) {
            let msg = &self.instance.messages[mi];
            let mut full = BitVec::new();
            for c in chunks {
                full.extend_bits(&c.unwrap_or_else(|| BitVec::zeros(self.params.cap_bits)));
            }
            full.truncate(msg.payload.len());
            delivered[x].insert((msg.src, msg.slot), full);
        }
        RoutingOutput {
            delivered,
            report: RoutingReport {
                engine: EngineUsed::Unit,
                rounds: net.rounds() - self.rounds_before,
                stages: self.num_stages,
                chunks: self.params.chunks,
                decode_failures: self.decode_failures,
            },
        }
    }
}

/// Runs the unit engine to completion. See the module docs.
pub fn route_unit(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let mut session = UnitSession::new(net, Cow::Borrowed(instance), cfg)?;
    loop {
        if let Some(out) = session.step(net)? {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::SuperMessage;
    use bdclique_netsim::Adversary;

    fn instance(
        n: usize,
        payload_bits: usize,
        msgs: Vec<(usize, usize, Vec<usize>)>,
    ) -> RoutingInstance {
        let messages = msgs
            .into_iter()
            .map(|(src, slot, targets)| SuperMessage {
                src,
                slot,
                payload: BitVec::from_fn(payload_bits, |i| (i + src + slot) % 3 == 0),
                targets,
            })
            .collect();
        RoutingInstance {
            n,
            payload_bits,
            messages,
        }
    }

    #[test]
    fn stage_coloring_respects_conflicts() {
        let inst = instance(
            8,
            4,
            vec![
                (0, 0, vec![1]),
                (0, 1, vec![2]), // same src as first => different stage
                (3, 0, vec![1]), // shares target 1 with first => different stage
                (4, 0, vec![5]), // independent => can share stage 0
            ],
        );
        let stages = schedule_stages(&inst);
        assert_ne!(stages[0], stages[1]);
        assert_ne!(stages[0], stages[2]);
        assert_eq!(stages[0], stages[3]);
    }

    #[test]
    fn fault_free_roundtrip_single_message() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let inst = instance(8, 12, vec![(2, 0, vec![5, 6])]);
        let out = route_unit(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(
            out.delivered[5].get(&(2, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(
            out.delivered[6].get(&(2, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(out.report.decode_failures, 0);
        assert_eq!(out.report.rounds, 2); // one stage, one chunk
    }

    #[test]
    fn multi_chunk_payload() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        // capacity per chunk: (7 - 2) symbols * 8 bits = 40 bits (slack 1).
        let inst = instance(8, 100, vec![(0, 0, vec![7])]);
        let out = route_unit(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(
            out.delivered[7].get(&(0, 0)),
            Some(&inst.messages[0].payload)
        );
        assert!(out.report.chunks >= 2);
    }

    #[test]
    fn self_target_is_local_and_free() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let inst = instance(8, 8, vec![(3, 0, vec![3])]);
        let out = route_unit(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(
            out.delivered[3].get(&(3, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(out.report.rounds, 2); // stage still runs (no other msgs needed it, but schedule exists)
    }

    #[test]
    fn bandwidth_lanes_reduce_rounds() {
        // Two independent messages, bandwidth for 2 lanes: 1 round pair.
        let mut wide = Network::new(8, 18, 0.0, Adversary::none());
        let inst = instance(
            8,
            8,
            vec![(0, 0, vec![1]), (0, 1, vec![2])], // same src: 2 stages
        );
        let out = route_unit(&mut wide, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(out.report.rounds, 2, "two stages share one round pair");
        assert_eq!(
            out.delivered[1].get(&(0, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(
            out.delivered[2].get(&(0, 1)),
            Some(&inst.messages[1].payload)
        );
    }

    #[test]
    fn infeasible_alpha_is_reported() {
        // n = 8, alpha = 0.45: budget 3, e_allow = 7, needs L > 14 > 8.
        let mut net = Network::new(8, 9, 0.45, Adversary::none());
        let inst = instance(8, 8, vec![(0, 0, vec![1])]);
        assert!(matches!(
            route_unit(&mut net, &inst, &RouterConfig::default()),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
