//! Shared experiment harness for the `tables` binary and the Criterion
//! benches: protocol/adversary factories, trial execution, and plain-text
//! table rendering.
//!
//! `DESIGN.md` maps every experiment id (`T1.R1` … `A.SKETCH`) to the
//! functions in [`crate::experiments`]; `EXPERIMENTS.md` records the
//! measured outcomes against the paper's claims.

pub mod experiments;

use bdclique_adversary::adaptive::{GreedyLoad, RushingRandom, TargetNode};
use bdclique_adversary::corruptors::PayloadCorruptor;
use bdclique_adversary::plans::{RandomMatchings, RelayPathHunter, RotatingMatching};
use bdclique_adversary::Payload;
use bdclique_core::protocols::AllToAllProtocol;
use bdclique_core::{AllToAllInstance, CoreError};
use bdclique_netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Which adversary to attach to a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarySpec {
    /// Fault-free.
    None,
    /// Non-adaptive: `⌊αn⌋` random matchings per round, planned up front,
    /// flipping every controlled frame.
    RandomMatchingsFlip,
    /// Non-adaptive: the rotating tournament matching (α = 1/n class).
    RotatingMatchingFlip,
    /// Non-adaptive: the degree-1 relay-path hunter for pair (src, dst).
    RelayHunter(usize, usize),
    /// Adaptive: greedily corrupt the busiest edges (rushing).
    GreedyFlip,
    /// Adaptive: concentrate the budget on one victim.
    TargetNodeFlip(usize),
    /// Adaptive: random busy edges, rushing, random payloads.
    RushingRandom,
}

impl AdversarySpec {
    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarySpec::None => "none",
            AdversarySpec::RandomMatchingsFlip => "nbd-matchings",
            AdversarySpec::RotatingMatchingFlip => "nbd-rotating",
            AdversarySpec::RelayHunter(..) => "nbd-hunter",
            AdversarySpec::GreedyFlip => "abd-greedy",
            AdversarySpec::TargetNodeFlip(_) => "abd-victim",
            AdversarySpec::RushingRandom => "abd-rushing",
        }
    }

    /// Builds the adversary (deterministic in `seed`).
    pub fn build(&self, seed: u64) -> Adversary {
        match *self {
            AdversarySpec::None => Adversary::none(),
            AdversarySpec::RandomMatchingsFlip => Adversary::non_adaptive(
                RandomMatchings::new(seed),
                PayloadCorruptor::new(Payload::Flip, seed),
            ),
            AdversarySpec::RotatingMatchingFlip => Adversary::non_adaptive(
                RotatingMatching::new(),
                PayloadCorruptor::new(Payload::Flip, seed),
            ),
            AdversarySpec::RelayHunter(src, dst) => Adversary::non_adaptive(
                RelayPathHunter { src, dst },
                PayloadCorruptor::new(Payload::Flip, seed),
            ),
            AdversarySpec::GreedyFlip => Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed)),
            AdversarySpec::TargetNodeFlip(victim) => {
                Adversary::adaptive(TargetNode::new(victim, Payload::Flip, seed))
            }
            AdversarySpec::RushingRandom => {
                Adversary::adaptive(RushingRandom::new(Payload::Random, seed))
            }
        }
    }
}

/// Outcome of one protocol execution.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Wrong or missing messages (out of `n²`).
    pub errors: usize,
    /// Network rounds consumed.
    pub rounds: u64,
    /// Honest bits queued.
    pub bits_sent: u64,
    /// Corrupted (edge, round) slots used by the adversary.
    pub edges_corrupted: u64,
}

/// Runs one trial of `proto` on a fresh network.
///
/// # Errors
///
/// Propagates protocol parameter errors ([`CoreError`]).
pub fn run_trial(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seed: u64,
) -> Result<Trial, CoreError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
    let inst = AllToAllInstance::random(n, b, &mut rng);
    let mut net = Network::new(n, bandwidth, alpha, spec.build(seed));
    let out = proto.run(&mut net, &inst)?;
    Ok(Trial {
        errors: inst.count_errors(&out),
        rounds: net.rounds(),
        bits_sent: net.stats().bits_sent,
        edges_corrupted: net.stats().edges_corrupted,
    })
}

/// Aggregates several trials of the same configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Number of trials.
    pub trials: usize,
    /// Trials with zero errors.
    pub perfect: usize,
    /// Total errors across trials.
    pub total_errors: usize,
    /// Mean rounds.
    pub mean_rounds: f64,
    /// Mean corrupted edge-slots per trial.
    pub mean_corrupted: f64,
    /// Infeasible-parameter failures.
    pub infeasible: usize,
    /// Trials that failed with any other protocol error (excluded from the
    /// means; nonzero here flags a configuration bug, not a protocol loss).
    pub failed: usize,
}

/// Runs `trials` seeded trials **in parallel** and aggregates.
///
/// Each trial owns its RNG seed (`1000 + t`) and a fresh network, so trials
/// are independent; they fan out across cores and the results are folded in
/// trial order, making the output bit-identical to [`aggregate_serial`]
/// (covered by a regression test).
pub fn aggregate(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    trials: usize,
) -> Aggregate {
    let results: Vec<Result<Trial, CoreError>> = (0..trials)
        .into_par_iter()
        .map(|t| run_trial(proto, n, b, bandwidth, alpha, spec, 1000 + t as u64))
        .collect();
    fold_trials(trials, results)
}

/// Serial reference implementation of [`aggregate`]: same seeds, same fold,
/// one thread. Kept public as the determinism oracle.
pub fn aggregate_serial(
    proto: &dyn AllToAllProtocol,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    trials: usize,
) -> Aggregate {
    let results: Vec<Result<Trial, CoreError>> = (0..trials)
        .map(|t| run_trial(proto, n, b, bandwidth, alpha, spec, 1000 + t as u64))
        .collect();
    fold_trials(trials, results)
}

/// Folds per-trial results (in trial order) into an [`Aggregate`]. The fold
/// order is part of the determinism contract: floating-point means are
/// computed from integer sums, so any ordering of the same multiset of
/// results yields identical fields — but keeping input order makes that
/// trivially true.
fn fold_trials(trials: usize, results: Vec<Result<Trial, CoreError>>) -> Aggregate {
    let mut agg = Aggregate {
        trials,
        ..Default::default()
    };
    let mut rounds_sum = 0u64;
    let mut corrupted_sum = 0u64;
    let mut completed = 0usize;
    for result in results {
        match result {
            Ok(trial) => {
                completed += 1;
                if trial.errors == 0 {
                    agg.perfect += 1;
                }
                agg.total_errors += trial.errors;
                rounds_sum += trial.rounds;
                corrupted_sum += trial.edges_corrupted;
            }
            Err(CoreError::Infeasible { .. }) => agg.infeasible += 1,
            Err(_) => agg.failed += 1,
        }
    }
    if completed > 0 {
        agg.mean_rounds = rounds_sum as f64 / completed as f64;
        agg.mean_corrupted = corrupted_sum as f64 / completed as f64;
    }
    agg
}

/// A plain-text table printer for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a titled table with column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_core::protocols::NaiveExchange;

    #[test]
    fn trial_runs_fault_free() {
        let t = run_trial(&NaiveExchange, 8, 1, 9, 0.0, AdversarySpec::None, 1).unwrap();
        assert_eq!(t.errors, 0);
        assert_eq!(t.rounds, 1);
    }

    #[test]
    fn aggregate_counts_perfect_trials() {
        let agg = aggregate(&NaiveExchange, 8, 1, 9, 0.0, AdversarySpec::None, 3);
        assert_eq!(agg.perfect, 3);
        assert_eq!(agg.total_errors, 0);
    }

    /// The parallel fan-out must be invisible in the results: every field of
    /// the [`Aggregate`] is bit-identical to the serial fold for the same
    /// seed set, across clean and adversarial configurations.
    #[test]
    fn parallel_aggregate_is_bit_identical_to_serial() {
        use bdclique_core::protocols::DetSqrt;
        let configs: &[(AdversarySpec, f64)] = &[
            (AdversarySpec::None, 0.0),
            (AdversarySpec::GreedyFlip, 0.07),
            (AdversarySpec::RushingRandom, 0.07),
            (AdversarySpec::RandomMatchingsFlip, 0.07),
        ];
        for &(spec, alpha) in configs {
            let par = aggregate(&DetSqrt::default(), 16, 1, 9, alpha, spec, 8);
            let ser = aggregate_serial(&DetSqrt::default(), 16, 1, 9, alpha, spec, 8);
            assert_eq!(
                par, ser,
                "spec {spec:?} diverged between parallel and serial"
            );
            // f64 equality above is exact; double-check the bit patterns to
            // rule out a PartialEq that tolerates representation drift.
            assert_eq!(par.mean_rounds.to_bits(), ser.mean_rounds.to_bits());
            assert_eq!(par.mean_corrupted.to_bits(), ser.mean_corrupted.to_bits());
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
    }

    #[test]
    fn adversary_specs_build() {
        for spec in [
            AdversarySpec::None,
            AdversarySpec::RandomMatchingsFlip,
            AdversarySpec::RotatingMatchingFlip,
            AdversarySpec::RelayHunter(0, 1),
            AdversarySpec::GreedyFlip,
            AdversarySpec::TargetNodeFlip(2),
            AdversarySpec::RushingRandom,
        ] {
            let _ = spec.build(7);
            assert!(!spec.name().is_empty());
        }
    }
}
