// lint-fixture-as: crates/netsim/src/fixture.rs
//! Known-bad: wall-clock and OS-entropy inputs in schedule-computing code.

use std::time::{Instant, SystemTime};

fn clock_leaks() -> u64 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_nanos() as u64
}

fn entropy_leaks() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
