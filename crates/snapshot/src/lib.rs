//! Versioned binary snapshot codec for checkpoint/resume.
//!
//! The workspace has no serde; this crate is the hand-rolled replacement:
//! a little-endian byte codec ([`Enc`] / [`Dec`]) with a four-byte magic
//! and a format version, plus the [`Snapshot`] / [`Restore`] traits the
//! simulator layers implement for their state.
//!
//! # Design rules
//!
//! * **Only dynamic state is serialized.** Anything a component re-derives
//!   deterministically from its configuration (routing plans, codeword
//!   tables, cover-free families) is rebuilt at restore instead of stored —
//!   the snapshot carries the *cursor*, not the *map*. This keeps snapshots
//!   small and immune to plan-layout refactors.
//! * **Behavioral objects are rebuilt, state is overlaid.** A boxed
//!   adversary strategy or a protocol cannot be materialized from bytes
//!   without a type registry; instead the caller reconstructs it from its
//!   spec (seed, parameters) and then loads the serialized dynamic state
//!   (RNG cursors, accumulated load maps) into it.
//! * **Round-trips are byte-identical.** `encode(decode(bytes)) == bytes`
//!   for every codec — property-tested in `netsim/tests/snapshot_roundtrip`.
//!   This is what makes "resumed run ≡ uninterrupted run" checkable at the
//!   byte level rather than merely field by field.
//! * **Truncated or corrupt input is an error, never a panic.** Every read
//!   is bounds-checked and every length prefix is validated against the
//!   remaining input before allocation.

// Decode must never panic on corrupt input; these promote the two easiest
// panic vectors (unwrap, slice indexing) to warnings, and CI's
// `clippy -D warnings` makes them blocking.
#![warn(clippy::unwrap_used, clippy::indexing_slicing)]

use bdclique_bits::BitVec;
use std::fmt;

/// Four-byte magic prefix of every snapshot document.
pub const MAGIC: [u8; 4] = *b"BDCS";

/// Current snapshot format version. Bump on any layout change; [`Dec`]
/// rejects mismatched versions instead of misparsing them.
pub const VERSION: u16 = 1;

/// Decode failure: the bytes do not describe a valid snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Input ended before the announced structure did.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The document does not start with [`MAGIC`].
    BadMagic,
    /// The document's format version is not [`VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// Structurally invalid content (bad discriminant, impossible length,
    /// failed invariant).
    Corrupt {
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl SnapError {
    /// A [`SnapError::Corrupt`] with the given diagnosis.
    #[must_use]
    pub fn corrupt(reason: impl Into<String>) -> Self {
        SnapError::Corrupt {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, {remaining} left"
                )
            }
            SnapError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapError::BadVersion { found } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (expected {VERSION})"
                )
            }
            SnapError::Corrupt { reason } => write!(f, "snapshot corrupt: {reason}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Byte encoder. All integers are little-endian; sequences are a `u64`
/// length prefix followed by the elements.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An encoder pre-filled with the [`MAGIC`] + [`VERSION`] header —
    /// the standard way to start a snapshot document.
    #[must_use]
    pub fn with_header() -> Self {
        let mut enc = Self::new();
        enc.buf.extend_from_slice(&MAGIC);
        enc.put_u16(VERSION);
        enc
    }

    /// Consumes the encoder, yielding the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a byte slice with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a [`BitVec`] as its bit length plus packed bytes.
    pub fn put_bits(&mut self, v: &BitVec) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(&v.to_bytes());
    }

    /// Writes `Some`/`None` plus the value via the closure.
    pub fn put_opt<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.put_bool(false),
            Some(inner) => {
                self.put_bool(true);
                f(self, inner);
            }
        }
    }

    /// Writes a sequence: `u64` length prefix, then each element via the
    /// closure.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_usize(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Byte decoder over a borrowed buffer. Every read is bounds-checked;
/// length prefixes are validated against the remaining input before any
/// allocation, so corrupt documents fail with [`SnapError`] instead of
/// aborting on an absurd allocation.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over raw bytes (no header check).
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// A decoder over a snapshot document: checks [`MAGIC`] and
    /// [`VERSION`], leaving the cursor after the header.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`] / [`SnapError::BadVersion`] / truncation.
    pub fn with_header(buf: &'a [u8]) -> Result<Self, SnapError> {
        let mut dec = Self::new(buf);
        let magic = dec.take(4)?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = dec.get_u16()?;
        if version != VERSION {
            return Err(SnapError::BadVersion { found: version });
        }
        Ok(dec)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the input was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if bytes are left over.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::corrupt(format!(
                "{} trailing bytes after document end",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let truncated = || SnapError::Truncated {
            needed: n,
            remaining: self.buf.len().saturating_sub(self.pos),
        };
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        let out = self.buf.get(self.pos..end).ok_or_else(truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`].
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(SnapError::Truncated {
            needed: 1,
            remaining: 0,
        })
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`].
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        let b: [u8; 2] = self.take(2)?.try_into().map_err(|_| SnapError::Truncated {
            needed: 2,
            remaining: 0,
        })?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`].
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| SnapError::Truncated {
            needed: 4,
            remaining: 0,
        })?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`].
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| SnapError::Truncated {
            needed: 8,
            remaining: 0,
        })?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` (stored as `u64`; rejects values beyond the
    /// platform's `usize`).
    ///
    /// # Errors
    ///
    /// Truncation, or [`SnapError::Corrupt`] on overflow.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a sequence length and validates it against the remaining
    /// input assuming each element takes at least `min_elem_bytes`.
    ///
    /// # Errors
    ///
    /// Truncation, or [`SnapError::Truncated`] when the announced length
    /// cannot fit in the remaining bytes.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let len = self.get_usize()?;
        let floor = len.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(SnapError::Truncated {
                needed: floor,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    ///
    /// # Errors
    ///
    /// Truncation, or [`SnapError::Corrupt`] on other byte values.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`].
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Truncation (including an announced length beyond the input).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Truncation, or [`SnapError::Corrupt`] on invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::corrupt("invalid utf-8"))
    }

    /// Reads a [`BitVec`] written by [`Enc::put_bits`].
    ///
    /// # Errors
    ///
    /// Truncation.
    pub fn get_bits(&mut self) -> Result<BitVec, SnapError> {
        let len = self.get_usize()?;
        let bytes_needed = len.div_ceil(8);
        if bytes_needed > self.remaining() {
            return Err(SnapError::Truncated {
                needed: bytes_needed,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(bytes_needed)?;
        Ok(BitVec::from_bytes(bytes, len))
    }

    /// Reads an option written by [`Enc::put_opt`].
    ///
    /// # Errors
    ///
    /// Truncation or corruption, from the flag or the closure.
    pub fn get_opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`Enc::put_seq`]. `min_elem_bytes` is
    /// the smallest possible wire size of one element, used to reject
    /// absurd lengths before allocating.
    ///
    /// # Errors
    ///
    /// Truncation or corruption, from the length or the closure.
    pub fn get_seq<T>(
        &mut self,
        min_elem_bytes: usize,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let len = self.get_len(min_elem_bytes)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Serialize dynamic state into an [`Enc`].
///
/// Implementors write *only* state that cannot be re-derived from
/// configuration — see the crate docs for the hybrid rule.
pub trait Snapshot {
    /// Appends this value's state to the encoder.
    fn snapshot(&self, enc: &mut Enc);
}

/// Rebuild a value from a [`Dec`] positioned at its serialized state.
pub trait Restore: Sized {
    /// Decodes one value, advancing the cursor past it.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError>;
}

impl Snapshot for u64 {
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_u64(*self);
    }
}

impl Restore for u64 {
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        dec.get_u64()
    }
}

impl Snapshot for usize {
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(*self);
    }
}

impl Restore for usize {
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        dec.get_usize()
    }
}

impl Snapshot for bool {
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_bool(*self);
    }
}

impl Restore for bool {
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        dec.get_bool()
    }
}

impl Snapshot for BitVec {
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_bits(self);
    }
}

impl Restore for BitVec {
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        dec.get_bits()
    }
}

#[cfg(test)]
// Tests assert on decode results; unwrap-on-corrupt is the point there.
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let enc = Enc::with_header();
        let bytes = enc.into_bytes();
        let dec = Dec::with_header(&bytes).unwrap();
        assert_eq!(dec.remaining(), 0);
        dec.finish().unwrap();
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        assert_eq!(
            Dec::with_header(b"XXXX\x01\x00").unwrap_err(),
            SnapError::BadMagic
        );
        let mut enc = Enc::new();
        enc.put_u8(b'B');
        enc.put_u8(b'D');
        enc.put_u8(b'C');
        enc.put_u8(b'S');
        enc.put_u16(99);
        assert_eq!(
            Dec::with_header(enc.bytes()).unwrap_err(),
            SnapError::BadVersion { found: 99 }
        );
        assert!(matches!(
            Dec::with_header(b"BD"),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn scalar_round_trips() {
        let mut enc = Enc::new();
        enc.put_u8(7);
        enc.put_u16(1234);
        enc.put_u32(0xdead_beef);
        enc.put_u64(u64::MAX - 3);
        enc.put_usize(42);
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_f64(0.375);
        enc.put_f64(f64::NAN);
        enc.put_str("bdclique");
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u16().unwrap(), 1234);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.get_usize().unwrap(), 42);
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert_eq!(dec.get_f64().unwrap(), 0.375);
        assert!(dec.get_f64().unwrap().is_nan());
        assert_eq!(dec.get_str().unwrap(), "bdclique");
        dec.finish().unwrap();
    }

    #[test]
    fn bitvec_round_trip_is_byte_identical() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 200] {
            let bits = BitVec::from_fn(len, |i| i % 3 == 0);
            let mut enc = Enc::new();
            enc.put_bits(&bits);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            let back = dec.get_bits().unwrap();
            assert_eq!(back, bits);
            let mut re = Enc::new();
            re.put_bits(&back);
            assert_eq!(re.into_bytes(), bytes, "len {len}");
        }
    }

    #[test]
    fn corrupt_inputs_error_without_panicking() {
        // Bool byte out of range.
        let mut dec = Dec::new(&[2]);
        assert!(matches!(dec.get_bool(), Err(SnapError::Corrupt { .. })));

        // Announced length far beyond the buffer: rejected before allocation.
        let mut enc = Enc::new();
        enc.put_u64(u64::MAX / 2);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert!(matches!(dec.get_bytes(), Err(SnapError::Truncated { .. })));

        // Bad UTF-8.
        let mut enc = Enc::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert!(matches!(dec.get_str(), Err(SnapError::Corrupt { .. })));

        // Trailing garbage caught by finish().
        let mut enc = Enc::new();
        enc.put_u8(1);
        enc.put_u8(2);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        dec.get_u8().unwrap();
        assert!(matches!(dec.finish(), Err(SnapError::Corrupt { .. })));
    }

    #[test]
    fn seq_and_opt_round_trip() {
        let items: Vec<u64> = vec![3, 1, 4, 1, 5];
        let mut enc = Enc::new();
        enc.put_seq(&items, |e, v| e.put_u64(*v));
        enc.put_opt(Some(&9u64), |e, v| e.put_u64(*v));
        enc.put_opt::<u64>(None, |e, v| e.put_u64(*v));
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = dec.get_seq(8, Dec::get_u64).unwrap();
        assert_eq!(back, items);
        assert_eq!(dec.get_opt(Dec::get_u64).unwrap(), Some(9));
        assert_eq!(dec.get_opt(Dec::get_u64).unwrap(), None);
        dec.finish().unwrap();
    }
}
