// lint-fixture-as: crates/core/src/fixture.rs
//! A well-formed suppression: names a known rule and carries a reason.

use std::collections::HashMap;

fn commutative_sum(map: HashMap<u32, u64>) -> u64 {
    // bdclique-lint: allow(no-hashmap-iteration) — addition is commutative,
    // so the fold result is order-independent.
    map.values().sum()
}
