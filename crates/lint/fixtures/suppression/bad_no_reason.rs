// lint-fixture-as: crates/core/src/fixture.rs
//! Known-bad: a suppression with no reason is itself a finding, and it
//! does NOT suppress — the underlying violation still fires.

use std::collections::HashMap;

fn commutative_sum(map: HashMap<u32, u64>) -> u64 {
    // bdclique-lint: allow(no-hashmap-iteration)
    map.values().sum()
}
