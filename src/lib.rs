//! # bdclique — All-to-All Communication with a Mobile Edge Adversary
//!
//! A full implementation of Fischer–Parter, *All-to-All Communication with
//! Mobile Edge Adversary: Almost Linearly More Faults, For Free* (PODC
//! 2025): general compilers that simulate any Congested Clique algorithm
//! round by round while a mobile Byzantine adversary controls an α-fraction
//! of the edges **incident to every node** in every round.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`bits`] — the bit-vector wire format,
//! * [`hash`] — k-wise independent hashing and shared randomness,
//! * [`codes`] — Reed–Solomon / concatenated codes and locally decodable
//!   codes,
//! * [`sketch`] — k-sparse recovery sketches,
//! * [`coverfree`] — (r, δ)-cover-free receiver-set families,
//! * [`netsim`] — the B-Congested-Clique simulator with the α-BD adversary
//!   model,
//! * [`adversary`] — concrete attack strategies,
//! * [`core`] — the routing scheme, the four `AllToAllComm` protocols of
//!   the paper's Table 1, the baselines, and the round-by-round compiler.
//!
//! # Quickstart
//!
//! Run the deterministic √n-segment protocol against an adaptive adversary
//! and verify that every message arrives:
//!
//! ```
//! use bdclique::adversary::adaptive::GreedyLoad;
//! use bdclique::adversary::Payload;
//! use bdclique::core::protocols::{AllToAllProtocol, DetSqrt};
//! use bdclique::core::AllToAllInstance;
//! use bdclique::netsim::{Adversary, Network};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let inst = AllToAllInstance::random(16, 2, &mut rng);
//! let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 1));
//! let mut net = Network::new(16, 9, 0.07, adversary);
//! let out = DetSqrt::default().run(&mut net, &inst).unwrap();
//! assert_eq!(inst.count_errors(&out), 0);
//! ```

pub use bdclique_adversary as adversary;
pub use bdclique_bits as bits;
pub use bdclique_codes as codes;
pub use bdclique_core as core;
pub use bdclique_coverfree as coverfree;
pub use bdclique_hash as hash;
pub use bdclique_netsim as netsim;
pub use bdclique_sketch as sketch;
