//! The session/driver/observer API end to end: run DetSqrt step by step
//! under a *scheduled* adversary — fault-free warmup, then a mid-run switch
//! to an adaptive greedy flipper — with a per-round trace and a round
//! budget, and print the round-by-round story.
//!
//! ```sh
//! cargo run --example round_trace
//! ```

use bdclique::adversary::adaptive::GreedyLoad;
use bdclique::adversary::Payload;
use bdclique::core::driver::{Driver, RoundBudget, RoundObserver, RoundTrace, ScheduleSwitch};
use bdclique::core::protocols::DetSqrt;
use bdclique::core::AllToAllInstance;
use bdclique::netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let inst = AllToAllInstance::random(n, 1, &mut rng);

    // Start fault-free; the greedy flipper arrives at round 6.
    let mut net = Network::new(n, 18, 0.05, Adversary::none());
    let mut schedule = ScheduleSwitch::new(vec![(
        6,
        Adversary::adaptive(GreedyLoad::new(Payload::Flip, 42)),
    )]);
    let mut trace = RoundTrace::new();
    let mut budget = RoundBudget::new(1_000); // runaway-loop guard
    let mut observers: [&mut dyn RoundObserver; 3] = [&mut schedule, &mut budget, &mut trace];

    let out = Driver::with_observers(&mut observers)
        .run(&DetSqrt::default(), &mut net, &inst)
        .expect("within budget and margin");

    println!("det-sqrt, n = {n}: {} errors\n", inst.count_errors(&out));
    println!("round  frames   bits  corrupted-edges");
    for frame in &trace.frames {
        println!(
            "{:>5}  {:>6}  {:>5}  {:>15}{}",
            frame.round,
            frame.stats.frames_sent,
            frame.stats.bits_sent,
            frame.stats.edges_corrupted,
            if frame.round == 6 { "  <- switch" } else { "" },
        );
    }
    let attacked: u64 = trace
        .frames
        .iter()
        .filter(|f| f.stats.edges_corrupted > 0)
        .count() as u64;
    println!(
        "\n{} of {} rounds attacked; {} corrupted edge-slots total; perfect output: {}",
        attacked,
        net.rounds(),
        net.stats().edges_corrupted,
        inst.count_errors(&out) == 0,
    );
}
