//! The unprotected direct exchange: one round, zero resilience.

use super::AllToAllProtocol;
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use bdclique_netsim::Network;

/// Direct exchange: `u` sends `m_{u,v}` straight to `v`. The fault-free
/// optimum (and the first step of the adaptive compilers); every corrupted
/// edge is a corrupted message.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveExchange;

impl AllToAllProtocol for NaiveExchange {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn run(&self, net: &mut Network, inst: &AllToAllInstance) -> Result<AllToAllOutput, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        let slices = b.div_ceil(net.bandwidth()).max(1);
        let per = b.div_ceil(slices);
        let mut out = AllToAllOutput::empty(n);
        // Pre-zeroed assembly buffers: delivered slices are written in
        // place, missing or short frames simply leave zeros behind.
        let mut partial: Vec<Vec<bdclique_bits::BitVec>> =
            vec![vec![bdclique_bits::BitVec::zeros(b); n]; n];
        for s in 0..slices {
            let lo = s * per;
            let hi = ((s + 1) * per).min(b);
            let mut traffic = net.traffic();
            for u in 0..n {
                for v in 0..n {
                    if u != v && hi > lo {
                        traffic.send(u, v, inst.message(u, v).slice(lo, hi));
                    }
                }
            }
            let delivery = net.exchange(traffic);
            for v in 0..n {
                for (u, piece) in delivery.inbox_of(v) {
                    let dst = &mut partial[v][u];
                    if piece.len() <= hi - lo {
                        // Common case: the slice fits its window exactly.
                        dst.write_bits(lo, piece);
                    } else {
                        // Overlong (adversarial) frame: clamp to the window.
                        for i in 0..hi - lo {
                            dst.set(lo + i, piece.get(i));
                        }
                    }
                }
            }
            net.reclaim(delivery);
        }
        for (v, row) in partial.into_iter().enumerate() {
            for (u, assembled) in row.into_iter().enumerate() {
                if u == v {
                    out.set(v, u, inst.message(u, u).clone());
                } else {
                    out.set(v, u, assembled);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(8, 4, &mut rng);
        let mut net = Network::new(8, 8, 0.0, Adversary::none());
        let out = NaiveExchange.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn wide_messages_use_multiple_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(4, 10, &mut rng);
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let out = NaiveExchange.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 3);
    }
}
