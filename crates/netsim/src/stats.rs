//! Round and bit accounting — the quantities the benchmark harness reports.

use bdclique_snapshot::{Dec, Enc, Restore, SnapError, Snapshot};

/// Cumulative statistics of a [`crate::Network`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Communication rounds executed.
    pub rounds: u64,
    /// Total payload bits queued by honest nodes.
    pub bits_sent: u64,
    /// Total non-empty frames queued by honest nodes.
    pub frames_sent: u64,
    /// Total (edge, round) corruption slots used by the adversary.
    pub edges_corrupted: u64,
    /// Total frames rewritten or suppressed by the adversary.
    pub frames_corrupted: u64,
    /// Maximum faulty degree the adversary actually used in any round.
    pub peak_fault_degree: usize,
    /// Full traffic-matrix snapshots taken for the history transcript.
    /// Zero unless the network runs in [`crate::HistoryMode::Full`] — the
    /// observable guarantee that `Digest`/`None` rounds are clone-free.
    pub intended_snapshots: u64,
}

impl NetStats {
    /// Average corrupted edges per round.
    pub fn corrupted_edges_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.edges_corrupted as f64 / self.rounds as f64
        }
    }

    /// The per-round delta between this snapshot and an `earlier` one: all
    /// cumulative counters subtract; `peak_fault_degree` is a running
    /// maximum, not a sum, so the delta carries the *later* peak (callers
    /// wanting a window-local degree must track edge sets themselves).
    ///
    /// This is what round observers consume: snapshot before an exchange,
    /// subtract after, and the result describes exactly that round.
    pub fn delta_since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            rounds: self.rounds - earlier.rounds,
            bits_sent: self.bits_sent - earlier.bits_sent,
            frames_sent: self.frames_sent - earlier.frames_sent,
            edges_corrupted: self.edges_corrupted - earlier.edges_corrupted,
            frames_corrupted: self.frames_corrupted - earlier.frames_corrupted,
            peak_fault_degree: self.peak_fault_degree,
            intended_snapshots: self.intended_snapshots - earlier.intended_snapshots,
        }
    }
}

impl Snapshot for NetStats {
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_u64(self.rounds);
        enc.put_u64(self.bits_sent);
        enc.put_u64(self.frames_sent);
        enc.put_u64(self.edges_corrupted);
        enc.put_u64(self.frames_corrupted);
        enc.put_usize(self.peak_fault_degree);
        enc.put_u64(self.intended_snapshots);
    }
}

impl Restore for NetStats {
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(NetStats {
            rounds: dec.get_u64()?,
            bits_sent: dec.get_u64()?,
            frames_sent: dec.get_u64()?,
            edges_corrupted: dec.get_u64()?,
            frames_corrupted: dec.get_u64()?,
            peak_fault_degree: dec.get_usize()?,
            intended_snapshots: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_since_subtracts_counters_and_keeps_the_peak() {
        let earlier = NetStats {
            rounds: 3,
            bits_sent: 100,
            frames_sent: 10,
            edges_corrupted: 4,
            frames_corrupted: 6,
            peak_fault_degree: 2,
            intended_snapshots: 1,
        };
        let later = NetStats {
            rounds: 4,
            bits_sent: 180,
            frames_sent: 13,
            edges_corrupted: 9,
            frames_corrupted: 11,
            peak_fault_degree: 3,
            intended_snapshots: 1,
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.rounds, 1);
        assert_eq!(d.bits_sent, 80);
        assert_eq!(d.frames_sent, 3);
        assert_eq!(d.edges_corrupted, 5);
        assert_eq!(d.frames_corrupted, 5);
        assert_eq!(d.peak_fault_degree, 3, "peak is cumulative, not a delta");
        assert_eq!(d.intended_snapshots, 0);
    }

    #[test]
    fn averages() {
        let s = NetStats {
            rounds: 4,
            edges_corrupted: 10,
            ..Default::default()
        };
        assert!((s.corrupted_edges_per_round() - 2.5).abs() < 1e-12);
        assert_eq!(NetStats::default().corrupted_edges_per_round(), 0.0);
    }
}
