//! Bit-identity, edge-case, and determinism tests for the stage-parallel
//! routing engines (PR 5):
//!
//! * parallel `route_unit` / `route_coverfree` == the `_serial` oracles —
//!   delivered payloads, report, and every network stat — across backends
//!   (instances small enough to auto-densify and large-sparse ones), random
//!   α, and an active adaptive adversary;
//! * the counter-based scheduler never exceeds the greedy coloring bound
//!   `2·Δ − 1` (observable through `RoutingReport::stages`);
//! * an empty instance completes on the first step with a well-formed empty
//!   output, in both engines and through `RouteSession`;
//! * a `Network::set_alpha` that raises the fault budget mid-session is
//!   refused (`Infeasible`) instead of silently undershooting the decode
//!   radius;
//! * a cross-run golden pinning the engine's exact wire behavior — the same
//!   nondeterminism class as the PR 4 LDC `fetch_instance` bug would show up
//!   here as a process-dependent round or bit count.

use bdclique_adversary::adaptive::GreedyLoad;
use bdclique_adversary::Payload;
use bdclique_bits::BitVec;
use bdclique_core::routing::coverfree::{route_coverfree, route_coverfree_serial};
use bdclique_core::routing::unit::{route_unit, route_unit_serial};
use bdclique_core::routing::{
    route, RouteSession, RouterConfig, RoutingInstance, RoutingMode, RoutingOutput, SuperMessage,
};
use bdclique_core::CoreError;
use bdclique_netsim::{Adversary, Network};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_instance(n: usize, k: usize, payload_bits: usize, seed: u64) -> RoutingInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let messages = (0..n)
        .flat_map(|u| (0..k).map(move |j| (u, j)))
        .map(|(u, j)| {
            let mut targets = vec![rng.gen_range(0..n as u64) as usize];
            if rng.gen_range(0..4u64) == 0 {
                targets.push(rng.gen_range(0..n as u64) as usize);
            }
            SuperMessage {
                src: u,
                slot: j,
                payload: BitVec::from_fn(payload_bits, |i| {
                    (i * 7 + u * 3 + j + seed as usize) % 5 < 2
                }),
                targets,
            }
        })
        .collect();
    RoutingInstance {
        n,
        payload_bits,
        messages,
    }
}

fn attacked_net(n: usize, alpha: f64, seed: u64) -> Network {
    if alpha == 0.0 {
        Network::new(n, 18, 0.0, Adversary::none())
    } else {
        Network::new(
            n,
            18,
            alpha,
            Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed)),
        )
    }
}

/// Everything observable from one routing run.
fn fingerprint(net: &Network, out: &RoutingOutput) -> (u64, u64, u64, u64, usize, usize, Vec<u8>) {
    let mut payload_bytes = Vec::new();
    for per_node in &out.delivered {
        let mut entries: Vec<(&(usize, usize), &BitVec)> = per_node.iter().collect();
        entries.sort();
        for ((src, slot), bits) in entries {
            payload_bytes.extend_from_slice(&(*src as u32).to_le_bytes());
            payload_bytes.extend_from_slice(&(*slot as u32).to_le_bytes());
            payload_bytes.extend_from_slice(&bits.to_bytes());
        }
    }
    (
        net.rounds(),
        net.stats().bits_sent,
        net.stats().frames_sent,
        net.stats().edges_corrupted,
        out.report.stages,
        out.report.decode_failures,
        payload_bytes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel unit routing is bit-identical to the serial oracle: same
    /// rounds, bits, frames, corruptions, report, and delivered payloads —
    /// under an active adaptive adversary and across instance shapes dense
    /// enough to auto-densify (small n, k = 2 floods ≥ 1/16 of the matrix)
    /// and sparse ones.
    #[test]
    fn unit_parallel_matches_serial(
        seed in 0u64..300,
        n_idx in 0usize..4,
        k in 1usize..3,
        budget in 0usize..2,
        payload_bits in 1usize..96,
    ) {
        let n = [8usize, 16, 24, 32][n_idx];
        let alpha = if budget == 0 { 0.0 } else { (budget as f64 + 0.2) / n as f64 };
        let inst = random_instance(n, k, payload_bits, seed);
        let cfg = RouterConfig { mode: RoutingMode::Unit, ..Default::default() };

        let mut net_par = attacked_net(n, alpha, seed ^ 0xad);
        let mut net_ser = attacked_net(n, alpha, seed ^ 0xad);
        let par = route_unit(&mut net_par, &inst, &cfg);
        let ser = route_unit_serial(&mut net_ser, &inst, &cfg);
        match (par, ser) {
            (Ok(par), Ok(ser)) => prop_assert_eq!(
                fingerprint(&net_par, &par),
                fingerprint(&net_ser, &ser)
            ),
            (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {}
            (par, ser) => prop_assert!(false, "feasibility diverged: {par:?} vs {ser:?}"),
        }
    }

    /// Same contract for the cover-free engine.
    #[test]
    fn coverfree_parallel_matches_serial(
        seed in 0u64..300,
        n_idx in 0usize..2,
        k in 1usize..3,
        payload_bits in 1usize..64,
    ) {
        let n = [64usize, 128][n_idx];
        let inst = random_instance(n, k, payload_bits, seed);
        let cfg = RouterConfig { mode: RoutingMode::CoverFree, ..Default::default() };
        let mut net_par = attacked_net(n, 0.0, seed);
        let mut net_ser = attacked_net(n, 0.0, seed);
        let par = route_coverfree(&mut net_par, &inst, &cfg);
        let ser = route_coverfree_serial(&mut net_ser, &inst, &cfg);
        match (par, ser) {
            (Ok(par), Ok(ser)) => prop_assert_eq!(
                fingerprint(&net_par, &par),
                fingerprint(&net_ser, &ser)
            ),
            (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {}
            (par, ser) => prop_assert!(false, "feasibility diverged: {par:?} vs {ser:?}"),
        }
    }

    /// The scheduler never exceeds the greedy coloring bound `2·Δ − 1` on
    /// single-target instances, observable through the report.
    #[test]
    fn scheduler_stays_within_greedy_bound(seed in 0u64..400, n in 8usize..40, k in 1usize..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let messages: Vec<SuperMessage> = (0..n)
            .flat_map(|u| (0..k).map(move |j| (u, j)))
            .map(|(u, j)| SuperMessage {
                src: u,
                slot: j,
                payload: BitVec::from_fn(8, |i| (i + u) % 2 == 0),
                targets: vec![rng.gen_range(0..n as u64) as usize],
            })
            .collect();
        let inst = RoutingInstance { n, payload_bits: 8, messages };
        let delta = inst.max_source_multiplicity().max(inst.max_target_multiplicity());
        let mut net = Network::new(n, 9, 0.0, Adversary::none());
        let cfg = RouterConfig { mode: RoutingMode::Unit, ..Default::default() };
        let out = route_unit(&mut net, &inst, &cfg).unwrap();
        prop_assert!(
            out.report.stages < 2 * delta,
            "{} stages > 2·{} − 1", out.report.stages, delta
        );
    }
}

/// An empty instance yields `Done` with a well-formed empty output on the
/// first call — no rounds, no errors — in both engines, through the Auto
/// path, and even at an α that would be infeasible for any real instance.
#[test]
fn empty_instance_completes_on_first_step() {
    let empty = RoutingInstance {
        n: 8,
        payload_bits: 16,
        messages: Vec::new(),
    };
    for mode in [RoutingMode::Unit, RoutingMode::CoverFree, RoutingMode::Auto] {
        let cfg = RouterConfig {
            mode,
            ..Default::default()
        };
        // α = 0.45 makes every decode margin infeasible — but nothing is
        // decoded, so the empty route must still succeed.
        let mut net = Network::new(8, 9, 0.45, Adversary::none());
        let out = route(&mut net, &empty, &cfg).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_eq!(net.rounds(), 0, "{mode:?}: no round may run");
        assert_eq!(out.report.rounds, 0);
        assert_eq!(out.report.decode_failures, 0);
        assert!(out.delivered.iter().all(|m| m.is_empty()), "{mode:?}");
        assert_eq!(out.delivered.len(), 8, "{mode:?}: per-node shape kept");

        // Session form: Done on the *first* step, error on the next.
        let mut net = Network::new(8, 9, 0.45, Adversary::none());
        let mut session = RouteSession::new(&net, empty.clone(), &cfg).unwrap();
        assert!(
            session.step(&mut net).unwrap().is_some(),
            "{mode:?}: first step must complete"
        );
        assert!(
            session.step(&mut net).is_err(),
            "{mode:?}: re-step must fail"
        );
    }
}

/// A `set_alpha` that raises the budget mid-session is refused with
/// `Infeasible` on the next step instead of silently under-decoding.
#[test]
fn raised_budget_mid_session_is_refused() {
    for mode in [RoutingMode::Unit, RoutingMode::CoverFree] {
        // A clean k = 1 ring: multiplicity 1 everywhere, so both engines'
        // margins validate at budget 2 and below.
        let n = 64;
        let inst = RoutingInstance {
            n,
            payload_bits: 16,
            messages: (0..n)
                .map(|u| SuperMessage {
                    src: u,
                    slot: 0,
                    payload: BitVec::from_fn(16, |i| (i + u) % 3 == 0),
                    targets: vec![(u + 1) % n],
                })
                .collect(),
        };
        let cfg = RouterConfig {
            mode,
            ..Default::default()
        };
        let mut net = Network::new(n, 18, 0.0, Adversary::none());
        let mut session = RouteSession::borrowed(&net, &inst, &cfg).unwrap();
        assert!(session.step(&mut net).unwrap().is_none(), "{mode:?}");
        let rounds_before = net.rounds();
        net.set_alpha(0.4); // budget 0 → 25: far past any absorbed margin
        let err = session.step(&mut net).unwrap_err();
        assert!(
            matches!(err, CoreError::Infeasible { .. }),
            "{mode:?}: {err}"
        );
        assert_eq!(
            net.rounds(),
            rounds_before,
            "{mode:?}: the refused round must not execute"
        );

        // An unchanged (or lowered) budget keeps the session running.
        let mut net = Network::new(n, 18, 2.2 / n as f64, Adversary::none());
        let mut session = RouteSession::borrowed(&net, &inst, &cfg).unwrap();
        assert!(session.step(&mut net).unwrap().is_none(), "{mode:?}");
        net.set_alpha(0.0);
        loop {
            if let Some(out) = session.step(&mut net).unwrap() {
                assert_eq!(out.report.decode_failures, 0, "{mode:?}");
                break;
            }
        }
    }
}

/// Cross-run golden: the engine's wire behavior on a fixed seeded case is
/// pinned to literal values, so any latent dependence on hash iteration
/// order (the PR 4 LDC `fetch_instance` bug class) fails this test in some
/// process instead of shipping silently. Captured from the stage-parallel
/// engine; `route_unit_serial` must reproduce it exactly.
#[test]
fn unit_engine_cross_run_golden() {
    let n = 16;
    let inst = random_instance(n, 2, 24, 42);
    let cfg = RouterConfig {
        mode: RoutingMode::Unit,
        ..Default::default()
    };
    for route_fn in [route_unit, route_unit_serial] {
        let mut net = attacked_net(n, 1.2 / n as f64, 0xfeed);
        let out = route_fn(&mut net, &inst, &cfg).unwrap();
        let (rounds, bits, frames, corrupted, stages, failures, payload) = fingerprint(&net, &out);
        assert_eq!(
            (rounds, bits, frames, corrupted, stages, failures),
            (GOLDEN.0, GOLDEN.1, GOLDEN.2, GOLDEN.3, GOLDEN.4, GOLDEN.5),
            "wire behavior diverged from the pinned golden"
        );
        // FNV-1a over the canonical payload serialization.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in payload {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        assert_eq!(h, GOLDEN.6, "delivered payloads diverged from the golden");
    }
}

/// `(rounds, bits_sent, frames_sent, edges_corrupted, stages,
/// decode_failures, payload_fnv)` — see `unit_engine_cross_run_golden`.
const GOLDEN: (u64, u64, u64, u64, usize, usize, u64) =
    (8, 14040, 780, 28, 7, 0, 17136331767548729117);
