//! Locally decodable codes: the `(q, δ, ε)`-LDC interface of Definition 4.
//!
//! The adaptive compiler (Theorem 5.5) is *parametric in the LDC*: it only
//! needs the non-adaptive `DecodeIndices(i, R)` / `LDCDecode(x, i, R)`
//! interface. This module defines that interface ([`Ldc`]) and a 2-query
//! Hadamard instantiation for unit-test scale; [`crate::RmLdc`] provides the
//! production instantiation (see `DESIGN.md`, substitution 1).

use crate::error::CodeError;
use bdclique_hash::SharedRandomness;

/// A non-adaptive locally decodable code over `symbol_bits`-bit symbols.
///
/// Mirrors Definition 4 of the paper: `decode_indices(i, R)` names the
/// positions `LDCDecode` will query for message index `i` under shared
/// randomness `R` — *without* looking at the codeword (non-adaptivity),
/// which is what lets a node fetch one set of `q` helpers and reuse them
/// across many codewords (Figure 1).
pub trait Ldc {
    /// Message length in symbols.
    fn message_len(&self) -> usize;
    /// Codeword length in symbols.
    fn codeword_len(&self) -> usize;
    /// Bits per symbol.
    fn symbol_bits(&self) -> u32;
    /// Number of queries `q` issued per decoded index.
    fn query_count(&self) -> usize;
    /// Fraction of adversarially corrupted codeword positions the local
    /// decoder is designed to tolerate (the `δ/2` of Definition 4).
    fn tolerated_fraction(&self) -> f64;

    /// Encodes a full message.
    ///
    /// # Errors
    ///
    /// Input-shape errors as in [`crate::SymbolCode::encode`].
    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError>;

    /// The codeword positions queried to decode message index `i` under
    /// shared randomness `shared` (the paper's `DecodeIndices(i, R)`).
    ///
    /// Always returns exactly [`Self::query_count`] positions; positions may
    /// repeat across (but not within) query groups.
    fn decode_indices(&self, index: usize, shared: &SharedRandomness) -> Vec<usize>;

    /// Locally decodes message index `i` from the answers to
    /// [`Self::decode_indices`] (same order), using the same randomness.
    ///
    /// # Errors
    ///
    /// [`CodeError::NoMajority`] / [`CodeError::TooManyErrors`] when the
    /// answers are too corrupted.
    fn local_decode(
        &self,
        index: usize,
        answers: &[u16],
        shared: &SharedRandomness,
    ) -> Result<u16, CodeError>;
}

/// The Hadamard code with 2-query local decoding, amplified by repetition.
///
/// Message: `k` bits; codeword: `2^k` bits, position `s` holding the inner
/// product `⟨m, s⟩`. Decoding bit `i` XORs positions `s` and `s ⊕ e_i` for a
/// random mask `s`, repeated `reps` times with majority voting. Exponential
/// length restricts it to unit-test scale (`k ≤ 20`), exactly the regime the
/// paper's Lemma 2.2 LDC is *not* needed for.
///
/// # Examples
///
/// ```
/// use bdclique_codes::{HadamardLdc, Ldc};
/// use bdclique_hash::SharedRandomness;
/// use bdclique_bits::BitVec;
///
/// let ldc = HadamardLdc::new(8, 5).unwrap();
/// let msg = vec![1, 0, 1, 1, 0, 0, 1, 0];
/// let cw = ldc.encode(&msg).unwrap();
/// let shared = SharedRandomness::from_bits(&BitVec::zeros(64));
/// let qs = ldc.decode_indices(2, &shared);
/// let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
/// assert_eq!(ldc.local_decode(2, &answers, &shared).unwrap(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HadamardLdc {
    k: usize,
    reps: usize,
}

impl HadamardLdc {
    /// Builds a Hadamard LDC for `k`-bit messages with `reps`-fold query
    /// amplification.
    ///
    /// # Errors
    ///
    /// Rejects `k == 0`, `k > 20` (codeword would exceed 2^20 bits), or
    /// `reps == 0`.
    pub fn new(k: usize, reps: usize) -> Result<Self, CodeError> {
        if k == 0 || k > 20 {
            return Err(CodeError::LengthMismatch {
                expected: 20,
                actual: k,
            });
        }
        if reps == 0 {
            return Err(CodeError::LengthMismatch {
                expected: 1,
                actual: 0,
            });
        }
        Ok(Self { k, reps })
    }
}

impl Ldc for HadamardLdc {
    fn message_len(&self) -> usize {
        self.k
    }

    fn codeword_len(&self) -> usize {
        1 << self.k
    }

    fn symbol_bits(&self) -> u32 {
        1
    }

    fn query_count(&self) -> usize {
        2 * self.reps
    }

    fn tolerated_fraction(&self) -> f64 {
        // Each query is uniform; a δ-corrupted word flips a vote with
        // probability ≤ 2δ. Majority amplification wants 2δ < 1/2.
        0.125
    }

    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
        if msg.len() != self.k {
            return Err(CodeError::LengthMismatch {
                expected: self.k,
                actual: msg.len(),
            });
        }
        let mut m = 0u32;
        for (i, &b) in msg.iter().enumerate() {
            if b > 1 {
                return Err(CodeError::SymbolOutOfRange {
                    value: b,
                    alphabet: 2,
                });
            }
            m |= (b as u32) << i;
        }
        Ok((0..self.codeword_len())
            .map(|s| ((m & s as u32).count_ones() & 1) as u16)
            .collect())
    }

    fn decode_indices(&self, index: usize, shared: &SharedRandomness) -> Vec<usize> {
        assert!(
            index < self.k,
            "message index {index} out of range {}",
            self.k
        );
        let masks = shared.uniform_samples(
            &format!("hadamard/{index}"),
            self.reps,
            self.codeword_len() as u64,
        );
        let mut out = Vec::with_capacity(2 * self.reps);
        for s in masks {
            let s = s as usize;
            out.push(s);
            out.push(s ^ (1 << index));
        }
        out
    }

    fn local_decode(
        &self,
        index: usize,
        answers: &[u16],
        _shared: &SharedRandomness,
    ) -> Result<u16, CodeError> {
        if answers.len() != 2 * self.reps {
            return Err(CodeError::LengthMismatch {
                expected: 2 * self.reps,
                actual: answers.len(),
            });
        }
        let _ = index;
        let mut ones = 0usize;
        for pair in answers.chunks(2) {
            if (pair[0] ^ pair[1]) & 1 == 1 {
                ones += 1;
            }
        }
        let zeros = self.reps - ones;
        if ones == zeros {
            return Err(CodeError::NoMajority);
        }
        Ok(u16::from(ones > zeros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_bits::BitVec;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn shared(tag: u64) -> SharedRandomness {
        let mut rng = ChaCha8Rng::seed_from_u64(tag);
        SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng))
    }

    #[test]
    fn encode_is_linear_inner_product() {
        let ldc = HadamardLdc::new(4, 1).unwrap();
        let cw = ldc.encode(&[1, 1, 0, 0]).unwrap();
        assert_eq!(cw.len(), 16);
        assert_eq!(cw[0], 0); // <m, 0> = 0
        assert_eq!(cw[0b0011], 0); // two overlapping ones
        assert_eq!(cw[0b0001], 1);
    }

    #[test]
    fn decodes_clean_codeword() {
        let ldc = HadamardLdc::new(8, 3).unwrap();
        let msg = vec![1, 0, 0, 1, 1, 0, 1, 0];
        let cw = ldc.encode(&msg).unwrap();
        let sh = shared(1);
        for i in 0..8 {
            let qs = ldc.decode_indices(i, &sh);
            assert_eq!(qs.len(), ldc.query_count());
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            assert_eq!(ldc.local_decode(i, &answers, &sh).unwrap(), msg[i]);
        }
    }

    #[test]
    fn survives_random_corruption_below_threshold() {
        let ldc = HadamardLdc::new(10, 15).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let msg: Vec<u16> = (0..10).map(|_| rng.gen_range(0..2)).collect();
        let mut cw = ldc.encode(&msg).unwrap();
        let n = cw.len();
        for _ in 0..(n / 10) {
            let p = rng.gen_range(0..n);
            cw[p] ^= 1; // ~10% corruption
        }
        let sh = shared(2);
        let mut ok = 0;
        for i in 0..10 {
            let qs = ldc.decode_indices(i, &sh);
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            if ldc.local_decode(i, &answers, &sh) == Ok(msg[i]) {
                ok += 1;
            }
        }
        assert!(ok >= 9, "only {ok}/10 indices decoded");
    }

    #[test]
    fn query_positions_are_nonadaptive_and_deterministic() {
        let ldc = HadamardLdc::new(6, 4).unwrap();
        let sh = shared(3);
        assert_eq!(ldc.decode_indices(3, &sh), ldc.decode_indices(3, &sh));
        // Different shared randomness gives different queries.
        assert_ne!(
            ldc.decode_indices(3, &sh),
            ldc.decode_indices(3, &shared(4))
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HadamardLdc::new(0, 1).is_err());
        assert!(HadamardLdc::new(21, 1).is_err());
        assert!(HadamardLdc::new(4, 0).is_err());
    }

    #[test]
    fn shared_randomness_is_bitvec_serializable() {
        // The protocol broadcasts R3 as a bit string; check the pathway.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let wire: BitVec = SharedRandomness::generate(&mut rng);
        let a = SharedRandomness::from_bits(&wire);
        let b = SharedRandomness::from_bits(&wire);
        let ldc = HadamardLdc::new(5, 2).unwrap();
        assert_eq!(ldc.decode_indices(1, &a), ldc.decode_indices(1, &b));
    }
}
