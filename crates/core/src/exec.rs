//! A small shared worker pool for speculative, out-of-round protocol
//! compute.
//!
//! The event-driven routing paths (see [`crate::routing`]) overlap pure
//! compute — codeword encoding for future virtual rounds, decoding of past
//! ones — with the serialized exchange pipeline that owns `&mut Network`.
//! That compute is *speculative*: a `RoundBudget` abort or an error can drop
//! a session while background tasks are still in flight, so the pool must
//! tolerate abandoned results (workers send with `let _ =` and never block
//! on a consumer).
//!
//! One process-wide pool (lazily spawned, sized to the machine) serves every
//! session; tasks are plain FIFO. This mirrors the workspace's `rayon` shim
//! in spirit — `std::thread` underneath, no dependencies — but provides
//! *futures* ([`Job`]) instead of a fork-join barrier, which is what an
//! executor that posts work for virtual times far ahead of the clock needs.
//!
//! # Examples
//!
//! ```
//! let jobs: Vec<_> = (0..4u64).map(|i| bdclique_core::exec::spawn(move || i * i)).collect();
//! let squares: Vec<u64> = jobs.into_iter().map(|j| j.join()).collect();
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! ```

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared FIFO of pending tasks.
struct Queue {
    tasks: Mutex<VecDeque<Task>>,
    ready: Condvar,
}

static POOL: OnceLock<&'static Queue> = OnceLock::new();

/// Upper bound on pool size: the event paths dispatch a handful of coarse
/// tasks per pack, so more workers than this only adds scheduler noise.
const MAX_WORKERS: usize = 8;

fn pool() -> &'static Queue {
    POOL.get_or_init(|| {
        let queue: &'static Queue = Box::leak(Box::new(Queue {
            tasks: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }));
        let workers = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(1, MAX_WORKERS);
        for i in 0..workers {
            thread::Builder::new()
                .name(format!("bdclique-exec-{i}"))
                .spawn(move || worker_loop(queue))
                .expect("spawning executor worker");
        }
        queue
    })
}

fn worker_loop(queue: &'static Queue) {
    loop {
        let task = {
            let mut tasks = queue.tasks.lock().expect("executor queue poisoned");
            loop {
                if let Some(task) = tasks.pop_front() {
                    break task;
                }
                tasks = queue.ready.wait(tasks).expect("executor queue poisoned");
            }
        };
        task();
    }
}

/// A handle to a value being computed on the pool.
///
/// Dropping a job without joining is safe and cheap: the worker's send is
/// ignored and the result is discarded — exactly what an aborted session
/// wants for its in-flight speculative work.
#[derive(Debug)]
pub struct Job<T> {
    rx: mpsc::Receiver<thread::Result<T>>,
}

impl<T> Job<T> {
    /// Blocks until the task finishes and returns its value.
    ///
    /// # Panics
    ///
    /// Re-raises the task's panic on the joining thread, so a panicking
    /// task behaves identically to running the same closure inline.
    pub fn join(self) -> T {
        match self.rx.recv().expect("executor worker dropped a task") {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// Runs `f` on the shared pool, returning a [`Job`] for its result.
pub fn spawn<T, F>(f: F) -> Job<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let queue = pool();
    let task: Task = Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(f));
        // The receiver may be gone (aborted session): discard silently.
        let _ = tx.send(result);
    });
    {
        let mut tasks = queue.tasks.lock().expect("executor queue poisoned");
        tasks.push_back(task);
    }
    queue.ready.notify_one();
    Job { rx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_return_their_values_in_join_order() {
        let jobs: Vec<Job<usize>> = (0..32).map(|i| spawn(move || i * 3)).collect();
        let values: Vec<usize> = jobs.into_iter().map(|j| j.join()).collect();
        assert_eq!(values, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_jobs_still_run_to_completion_without_blocking_workers() {
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let ran = ran.clone();
            drop(spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // The pool survives abandoned receivers: later jobs still complete.
        let probe = spawn(|| 7u32);
        assert_eq!(probe.join(), 7);
        // All dropped tasks eventually executed (FIFO: they ran before the
        // probe on whichever worker picked them up; give stragglers a beat).
        for _ in 0..200 {
            if ran.load(Ordering::SeqCst) == 16 {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(ran.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panics_propagate_to_join() {
        let job = spawn(|| -> u8 { panic!("task exploded") });
        let err = catch_unwind(AssertUnwindSafe(|| job.join())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task exploded");
        // The worker that caught the panic keeps serving.
        assert_eq!(spawn(|| 11u8).join(), 11);
    }
}
