//! The synchronous network driver.

use crate::adversary::Adversary;
use crate::history::{History, HistoryMode};
use crate::pool::FramePool;
use crate::stats::NetStats;
use crate::store::FrameArena;
use crate::topology::Topology;
use crate::traffic::{Delivery, Traffic};
use bdclique_bits::BitVec;
use bdclique_snapshot::{Dec, Enc, Restore, SnapError, Snapshot};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Everything the protocol has published to *adaptive* adversaries, indexed
/// by label.
///
/// Retention policy: the log is **append-only for the lifetime of the
/// network** — the paper's footnote-4 adversary conditions on *all* past
/// randomness, so nothing is ever evicted. Publishing the same label again
/// keeps both entries in [`PublishedLog::entries`] (the adversary saw the
/// old value too) while [`PublishedLog::get`] resolves to the most recent
/// one in O(1); adaptive strategies no longer need the linear scans the old
/// bare `Vec<(String, BitVec)>` forced on them. Memory grows with the total
/// published volume, which protocols keep at O(1) strings per run.
#[derive(Debug, Clone, Default)]
pub struct PublishedLog {
    entries: Vec<(String, BitVec)>,
    latest: HashMap<String, usize>,
}

impl PublishedLog {
    pub(crate) fn push(&mut self, label: String, bits: BitVec) {
        self.latest.insert(label.clone(), self.entries.len());
        self.entries.push((label, bits));
    }

    /// The most recent bits published under `label`. O(1).
    pub fn get(&self, label: &str) -> Option<&BitVec> {
        self.latest.get(label).map(|&i| &self.entries[i].1)
    }

    /// All publications, oldest first (repeated labels appear repeatedly).
    pub fn entries(&self) -> &[(String, BitVec)] {
        &self.entries
    }

    /// Number of publications so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the append-only publication list (the label index is
    /// rebuilt at restore).
    pub fn snapshot(&self, enc: &mut Enc) {
        enc.put_seq(&self.entries, |e, (label, bits)| {
            e.put_str(label);
            e.put_bits(bits);
        });
    }

    /// Rebuilds a log serialized by [`PublishedLog::snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let entries = dec.get_seq(16, |d| {
            let label = d.get_str()?;
            let bits = d.get_bits()?;
            Ok((label, bits))
        })?;
        let mut log = Self::default();
        for (label, bits) in entries {
            log.push(label, bits);
        }
        Ok(log)
    }
}

/// Errors surfaced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A non-adaptive plan produced an edge set above the degree budget —
    /// the simulated model forbids this, so the run is invalid.
    BudgetExceeded {
        /// Round in which the violation occurred.
        round: u64,
        /// Offending faulty degree.
        degree: usize,
        /// Allowed budget `⌊αn⌋`.
        budget: usize,
    },
    /// On a sparse topology, a non-adaptive plan claimed an edge the graph
    /// does not have — the mobile adversary camps on *wires*, so a pair
    /// without a wire cannot be corrupted.
    EdgeOffTopology {
        /// Round in which the violation occurred.
        round: u64,
        /// Offending pair, normalized `from < to`.
        from: usize,
        /// Offending pair, normalized `from < to`.
        to: usize,
    },
    /// On a sparse topology, a non-adaptive plan exceeded some node's
    /// topology-relative budget `⌊α·(deg(v)+1)⌋`.
    NodeBudgetExceeded {
        /// Round in which the violation occurred.
        round: u64,
        /// The node whose budget was exceeded.
        node: usize,
        /// Offending faulty degree at that node.
        degree: usize,
        /// Allowed budget `⌊α·(deg(node)+1)⌋`.
        budget: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BudgetExceeded {
                round,
                degree,
                budget,
            } => write!(
                f,
                "adversary exceeded degree budget in round {round}: {degree} > {budget}"
            ),
            NetworkError::EdgeOffTopology { round, from, to } => write!(
                f,
                "adversary claimed edge {{{from},{to}}} in round {round}, \
                 but the topology has no such edge"
            ),
            NetworkError::NodeBudgetExceeded {
                round,
                node,
                degree,
                budget,
            } => write!(
                f,
                "adversary exceeded node {node}'s degree budget in round \
                 {round}: {degree} > {budget}"
            ),
        }
    }
}

impl Error for NetworkError {}

/// A synchronous B-Congested-Clique with an attached mobile α-BD adversary.
///
/// Protocols drive the network by building a [`Traffic`] matrix and calling
/// [`Network::exchange`]; the adversary acts between queueing and delivery.
#[derive(Debug)]
pub struct Network {
    n: usize,
    bandwidth: usize,
    alpha: f64,
    adversary: Adversary,
    topology: Arc<Topology>,
    round: u64,
    stats: NetStats,
    published: PublishedLog,
    history: History,
    arena: FrameArena,
}

impl Network {
    /// Creates a *complete* network of `n` nodes with `bandwidth` bits per
    /// ordered pair per round and fault fraction `alpha` (degree budget
    /// `⌊αn⌋`) — shorthand for [`Network::on_topology`] with
    /// [`Topology::complete`], and the paper's model.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `bandwidth == 0`, or `alpha ∉ [0, 1)`.
    pub fn new(n: usize, bandwidth: usize, alpha: f64, adversary: Adversary) -> Self {
        assert!(n >= 2, "a clique needs at least two nodes");
        Self::on_topology(Topology::complete(n), bandwidth, alpha, adversary)
    }

    /// Creates a network over an arbitrary communication graph. Only pairs
    /// that share a topology edge may exchange frames, and the adversary's
    /// per-round budget is `⌊α·(deg(v)+1)⌋` faulty edges at each node `v`
    /// (which reduces to `⌊αn⌋` on the clique).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0` or `alpha ∉ [0, 1)`.
    pub fn on_topology(
        topology: Topology,
        bandwidth: usize,
        alpha: f64,
        adversary: Adversary,
    ) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        Self {
            n: topology.n(),
            bandwidth,
            alpha,
            adversary,
            topology: Arc::new(topology),
            round: 0,
            stats: NetStats::default(),
            published: PublishedLog::default(),
            history: History::new(HistoryMode::Digest),
            arena: FrameArena::default(),
        }
    }

    /// Switches the history recording mode (call before the first round).
    pub fn set_history_mode(&mut self, mode: HistoryMode) {
        self.history = History::new(mode);
    }

    /// Replaces the attached adversary, returning the previous one.
    ///
    /// This is the entry point for *scheduled* attacks: a round observer
    /// (e.g. `bdclique-core`'s `ScheduleSwitch`) can swap plans between
    /// rounds, modeling an adversary whose strategy itself is
    /// time-varying — burst windows, periodic phases, or a mid-run switch
    /// between the non-adaptive and adaptive classes. The round counter,
    /// stats, history, and published log are untouched: the new adversary
    /// inherits the full transcript context, exactly as the paper's mobile
    /// adversary re-chooses its corrupted edge set every round.
    pub fn set_adversary(&mut self, adversary: Adversary) -> Adversary {
        std::mem::replace(&mut self.adversary, adversary)
    }

    /// The recorded transcript so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth `B` in bits.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// The fault fraction α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Changes the fault fraction α (and therefore [`Network::fault_budget`])
    /// between rounds — the budget-raising counterpart of
    /// [`Network::set_adversary`] for *scheduled* attacks whose strength
    /// itself is time-varying. Round counter, stats, history, and the
    /// published log are untouched.
    ///
    /// Protocol sessions that derived decode margins from the budget at
    /// construction re-validate it on every step and refuse to continue
    /// (`Infeasible`) if the budget has grown past what their code absorbs,
    /// rather than silently under-decoding.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ [0, 1)`.
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        self.alpha = alpha;
    }

    /// The communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// A shared handle to the communication graph (for sessions and
    /// executors that outlive a borrow of the network).
    pub fn topology_handle(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    /// The clique-global per-round faulty-degree budget `⌊αn⌋`. On sparse
    /// topologies the binding constraint is the per-node
    /// [`Network::fault_budget_of`]; on the clique the two coincide.
    pub fn fault_budget(&self) -> usize {
        (self.alpha * self.n as f64).floor() as usize
    }

    /// The topology-relative per-round budget at node `v`:
    /// `⌊α·(deg(v)+1)⌋`, which is `⌊αn⌋` on the clique.
    pub fn fault_budget_of(&self, v: usize) -> usize {
        self.topology.budget_of(v, self.alpha)
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The network's **virtual clock**: the virtual time of the next
    /// exchange. Identical to [`Network::rounds`] — each delivery advances
    /// the clock by one — but named for event-driven executors, which tag
    /// frame batches with the virtual time at which they must be exchanged
    /// (see [`crate::MessageBus`]). Adversary budgets, history digests, and
    /// observer round views are all anchored to this clock, never to the
    /// wall-clock order in which batches were produced.
    pub fn virtual_time(&self) -> u64 {
        self.round
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// A fresh empty traffic matrix for this network's shape, backed by the
    /// network's frame arena: its sparse row tables are recycled from
    /// earlier rounds rather than allocated fresh.
    pub fn traffic(&mut self) -> Traffic {
        Traffic::new_in(self.n, self.bandwidth, &mut self.arena, &self.topology)
    }

    /// A zeroed frame buffer of `len` bits drawn from the network's frame
    /// arena. Hot send loops that build frames incrementally can use this
    /// instead of `BitVec::zeros` so that buffers recycled through
    /// [`Network::reclaim`] are reused rather than reallocated every round.
    pub fn frame_buffer(&mut self, len: usize) -> BitVec {
        self.arena.take_frame(len)
    }

    /// Returns a consumed [`Delivery`]'s tables and frame buffers to the
    /// network's arena for reuse by later rounds. Optional — dropping a
    /// delivery is always correct — but protocols that run many rounds cut
    /// their allocator traffic substantially by reclaiming.
    pub fn reclaim(&mut self, delivery: Delivery) {
        delivery.recycle_into(&mut self.arena);
    }

    /// Like [`Network::reclaim`], but frame buffers go to `pool` — a `Sync`
    /// free-list reachable from executor worker threads — while the tables
    /// still return to the network arena. This is how event-driven
    /// executors recirculate buffers into prefetch jobs that build rounds
    /// off the protocol thread (where the arena is unreachable).
    pub fn reclaim_split(&mut self, delivery: Delivery, pool: &FramePool) {
        delivery.recycle_split(&mut self.arena, pool);
    }

    /// Publishes protocol-internal randomness to *adaptive* adversaries
    /// (modeling the rushing adaptive adversary's knowledge of node states;
    /// non-adaptive adversaries never see it).
    pub fn publish(&mut self, label: impl Into<String>, bits: BitVec) {
        self.published.push(label.into(), bits);
    }

    /// The published-randomness log (what an adaptive adversary can see).
    pub fn published(&self) -> &PublishedLog {
        &self.published
    }

    /// Executes one synchronous round: queue → corrupt → deliver.
    ///
    /// # Panics
    ///
    /// Panics when a *non-adaptive* plan violates its degree budget (an
    /// invalid experiment, not a recoverable condition) or when the traffic
    /// shape does not match the network.
    pub fn exchange(&mut self, traffic: Traffic) -> Delivery {
        self.try_exchange(traffic)
            .expect("adversary violated model constraints")
    }

    /// Non-panicking variant of [`Network::exchange`].
    ///
    /// The round pipeline is clone-free outside [`HistoryMode::Full`]: the
    /// volume counters are O(1) reads, the adversary sees intended traffic
    /// through the scopes' copy-on-write overlay, and a full matrix snapshot
    /// is taken only when the history transcript actually records it.
    ///
    /// # Errors
    ///
    /// [`NetworkError::BudgetExceeded`] when a non-adaptive plan oversteps.
    pub fn try_exchange(&mut self, mut traffic: Traffic) -> Result<Delivery, NetworkError> {
        assert_eq!(traffic.n(), self.n, "traffic shape mismatch");
        assert_eq!(traffic.bandwidth(), self.bandwidth, "bandwidth mismatch");
        if !self.topology.is_complete() && !traffic.has_topology() {
            // Traffic built without a topology handle (Traffic::new) was
            // not validated frame-by-frame; re-check before delivering.
            traffic.assert_on_topology(&self.topology);
        }
        let frames_before = traffic.frame_count();
        let bits_before = traffic.total_bits();
        self.stats.bits_sent += bits_before;
        self.stats.frames_sent += frames_before;

        let intended_snapshot = if self.history.wants_intended() {
            self.stats.intended_snapshots += 1;
            Some(traffic.clone())
        } else {
            None
        };
        let (edges, frames_touched) = self.adversary.act(
            self.round,
            &mut traffic,
            &self.published,
            &self.history,
            &self.topology,
            self.alpha,
        )?;
        self.stats.edges_corrupted += edges.len() as u64;
        self.stats.frames_corrupted += frames_touched;
        self.stats.peak_fault_degree = self.stats.peak_fault_degree.max(edges.max_degree());
        let mut corrupted: Vec<(usize, usize)> = edges.iter().collect();
        corrupted.sort_unstable();
        self.history.push(
            self.round,
            corrupted,
            frames_before,
            bits_before,
            intended_snapshot,
        );

        self.round += 1;
        self.stats.rounds = self.round;
        Ok(traffic.into_delivery(&mut self.arena))
    }

    /// Serializes the network's resumable state: topology, shape, virtual
    /// clock, stats, published log, history transcript, and the attached
    /// adversary's *dynamic* state (RNG cursors, accumulated maps — via
    /// [`Adversary::save_state`]). The frame arena is allocator bookkeeping
    /// and is never serialized. The snapshot must be taken **between**
    /// rounds (the only time protocol code can observe the network anyway).
    pub fn snapshot(&self, enc: &mut Enc) {
        self.topology.snapshot(enc);
        enc.put_usize(self.bandwidth);
        enc.put_f64(self.alpha);
        enc.put_u64(self.round);
        self.stats.snapshot(enc);
        self.published.snapshot(enc);
        self.history.snapshot(enc);
        enc.put_bytes(&self.adversary.save_state());
    }

    /// Rebuilds a network serialized by [`Network::snapshot`].
    ///
    /// Boxed adversary behavior cannot be materialized from bytes without a
    /// type registry, so the caller reconstructs the adversary from its
    /// spec (exactly as at original construction — same seeds, same
    /// parameters) and this method overlays the serialized dynamic state
    /// onto it via [`Adversary::load_state`]. Supplying an adversary of a
    /// different shape than the snapshotted one is an error.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input, or on an adversary
    /// state mismatch.
    pub fn restore(dec: &mut Dec<'_>, mut adversary: Adversary) -> Result<Self, SnapError> {
        let topology = Topology::restore(dec)?;
        let bandwidth = dec.get_usize()?;
        if bandwidth == 0 {
            return Err(SnapError::corrupt("network with zero bandwidth"));
        }
        let alpha = dec.get_f64()?;
        if !(0.0..1.0).contains(&alpha) {
            return Err(SnapError::corrupt(format!("alpha {alpha} out of [0, 1)")));
        }
        let round = dec.get_u64()?;
        let stats = NetStats::restore(dec)?;
        let published = PublishedLog::restore(dec)?;
        let topology = Arc::new(topology);
        let topo_opt = if topology.is_complete() {
            None
        } else {
            Some(&topology)
        };
        let history = History::restore(dec, topo_opt)?;
        let adv_state = dec.get_bytes()?.to_vec();
        adversary.load_state(&adv_state)?;
        Ok(Self {
            n: topology.n(),
            bandwidth,
            alpha,
            adversary,
            topology,
            round,
            stats,
            published,
            history,
            arena: FrameArena::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryView, CorruptionScope, EdgeSet};

    struct FlipEverything;

    impl crate::adversary::Corruptor for FlipEverything {
        fn corrupt(
            &mut self,
            _view: &AdversaryView<'_>,
            edges: &EdgeSet,
            scope: &mut CorruptionScope<'_>,
        ) {
            for (u, v) in edges.iter().collect::<Vec<_>>() {
                for (a, b) in [(u, v), (v, u)] {
                    if let Some(frame) = scope.intended(a, b).cloned() {
                        let mut flipped = frame;
                        for i in 0..flipped.len() {
                            flipped.flip(i);
                        }
                        scope.set(a, b, Some(flipped));
                    }
                }
            }
        }
    }

    fn single_edge_plan(u: usize, v: usize) -> impl crate::adversary::EdgePlan {
        move |_round: u64, n: usize, _budget: usize| {
            let mut es = EdgeSet::new(n);
            es.insert(u, v);
            es
        }
    }

    #[test]
    fn fault_free_delivery() {
        let mut net = Network::new(3, 4, 0.0, Adversary::none());
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true, false]));
        t.send(2, 0, BitVec::from_bools(&[true]));
        let d = net.exchange(t);
        assert_eq!(d.received(1, 0), Some(&BitVec::from_bools(&[true, false])));
        assert_eq!(d.received(0, 2), Some(&BitVec::from_bools(&[true])));
        assert_eq!(net.stats().bits_sent, 3);
        assert_eq!(net.stats().frames_sent, 2);
        assert_eq!(net.stats().edges_corrupted, 0);
    }

    #[test]
    fn nonadaptive_adversary_flips_controlled_edge_both_directions() {
        let adv = Adversary::non_adaptive(single_edge_plan(0, 1), FlipEverything);
        let mut net = Network::new(4, 4, 0.5, adv);
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true, true]));
        t.send(1, 0, BitVec::from_bools(&[false]));
        t.send(0, 2, BitVec::from_bools(&[true]));
        let d = net.exchange(t);
        assert_eq!(d.received(1, 0), Some(&BitVec::from_bools(&[false, false])));
        assert_eq!(d.received(0, 1), Some(&BitVec::from_bools(&[true])));
        // Uncontrolled edge is untouched.
        assert_eq!(d.received(2, 0), Some(&BitVec::from_bools(&[true])));
        assert_eq!(net.stats().edges_corrupted, 1);
        assert_eq!(net.stats().frames_corrupted, 2);
        assert_eq!(net.stats().peak_fault_degree, 1);
    }

    #[test]
    fn budget_violation_is_an_error() {
        // Plan claims a star of degree 3 with budget 1 (alpha = 0.25, n = 4).
        let plan = |_round: u64, n: usize, _budget: usize| {
            let mut es = EdgeSet::new(n);
            es.insert(0, 1);
            es.insert(0, 2);
            es.insert(0, 3);
            es
        };
        struct Noop;
        impl crate::adversary::Corruptor for Noop {
            fn corrupt(&mut self, _: &AdversaryView<'_>, _: &EdgeSet, _: &mut CorruptionScope<'_>) {
            }
        }
        let mut net = Network::new(4, 2, 0.25, Adversary::non_adaptive(plan, Noop));
        let t = net.traffic();
        assert_eq!(
            net.try_exchange(t),
            Err(NetworkError::BudgetExceeded {
                round: 0,
                degree: 3,
                budget: 1
            })
        );
    }

    #[test]
    fn adaptive_adversary_sees_published_randomness() {
        struct EchoChecker {
            saw: std::rc::Rc<std::cell::RefCell<usize>>,
        }
        impl crate::adversary::AdaptiveStrategy for EchoChecker {
            fn corrupt(
                &mut self,
                view: &AdversaryView<'_>,
                _scope: &mut crate::adversary::AdaptiveScope<'_>,
            ) {
                *self.saw.borrow_mut() = view.published.len();
            }
        }
        let saw = std::rc::Rc::new(std::cell::RefCell::new(0));
        let mut net = Network::new(
            3,
            2,
            0.3,
            Adversary::adaptive(EchoChecker { saw: saw.clone() }),
        );
        net.publish("R1", BitVec::from_bools(&[true]));
        let t = net.traffic();
        net.exchange(t);
        assert_eq!(*saw.borrow(), 1);
    }

    #[test]
    fn digest_mode_records_have_no_snapshot_and_no_clone() {
        // Default mode is Digest: records exist, carry `intended: None`,
        // and the snapshot counter proves no full-matrix clone was taken.
        let adv = Adversary::non_adaptive(single_edge_plan(0, 1), FlipEverything);
        let mut net = Network::new(4, 4, 0.5, adv);
        assert_eq!(net.history().mode(), HistoryMode::Digest);
        for _ in 0..3 {
            let mut t = net.traffic();
            t.send(0, 1, BitVec::from_bools(&[true, true]));
            net.exchange(t);
        }
        assert_eq!(net.history().records().len(), 3);
        assert!(net.history().records().iter().all(|r| r.intended.is_none()));
        assert_eq!(
            net.stats().intended_snapshots,
            0,
            "Digest-mode rounds must never clone the traffic matrix"
        );
    }

    #[test]
    fn none_mode_is_clone_free_and_recordless() {
        let mut net = Network::new(3, 2, 0.0, Adversary::none());
        net.set_history_mode(HistoryMode::None);
        for _ in 0..4 {
            let t = net.traffic();
            net.exchange(t);
        }
        assert!(net.history().records().is_empty());
        assert_eq!(net.stats().intended_snapshots, 0);
    }

    #[test]
    fn full_mode_snapshots_exactly_once_per_round() {
        let adv = Adversary::non_adaptive(single_edge_plan(0, 1), FlipEverything);
        let mut net = Network::new(4, 4, 0.5, adv);
        net.set_history_mode(HistoryMode::Full);
        for round in 0..3 {
            let mut t = net.traffic();
            t.send(0, 1, BitVec::from_bools(&[true]));
            t.send(2, 3, BitVec::from_bools(&[false]));
            net.exchange(t);
            assert_eq!(net.stats().intended_snapshots, round + 1);
        }
        // The recorded snapshots hold the *intended* traffic, pre-corruption.
        for r in net.history().records() {
            let intended = r.intended.as_ref().expect("Full mode records traffic");
            assert_eq!(intended.frame(0, 1), Some(&BitVec::from_bools(&[true])));
            assert_eq!(intended.frame(2, 3), Some(&BitVec::from_bools(&[false])));
        }
    }

    #[test]
    fn published_log_indexes_latest_by_label() {
        let mut net = Network::new(3, 2, 0.0, Adversary::none());
        assert!(net.published().is_empty());
        net.publish("R1", BitVec::from_bools(&[true]));
        net.publish("R2", BitVec::from_bools(&[false]));
        net.publish("R1", BitVec::from_bools(&[false, false]));
        let log = net.published();
        assert_eq!(log.len(), 3, "the log is append-only");
        assert_eq!(log.get("R1"), Some(&BitVec::from_bools(&[false, false])));
        assert_eq!(log.get("R2"), Some(&BitVec::from_bools(&[false])));
        assert_eq!(log.get("R3"), None);
        assert_eq!(log.entries()[0].0, "R1");
    }

    #[test]
    fn reclaim_recycles_tables_and_frames_across_rounds() {
        let mut net = Network::new(8, 4, 0.0, Adversary::none());
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true]));
        t.send(3, 5, BitVec::from_bools(&[false, true]));
        let d = net.exchange(t);
        net.reclaim(d);
        let (tables, frames) = net.arena.pooled();
        assert!(tables >= 8, "row and inbox tables must be pooled");
        assert!(frames >= 2, "reclaimed frame buffers must be pooled");
        // A pooled buffer comes back zeroed at the requested length.
        let buf = net.frame_buffer(3);
        assert_eq!(buf, BitVec::zeros(3));
        let (_, frames_after) = net.arena.pooled();
        assert_eq!(frames_after, frames - 1, "frame_buffer draws from the pool");
    }

    #[test]
    fn set_adversary_swaps_mid_run_and_preserves_context() {
        let adv = Adversary::non_adaptive(single_edge_plan(0, 1), FlipEverything);
        let mut net = Network::new(4, 4, 0.5, adv);
        net.publish("R", BitVec::from_bools(&[true]));
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true]));
        net.exchange(t);
        assert_eq!(net.stats().edges_corrupted, 1);

        // Swap to fault-free between rounds: counters, history, and the
        // published log survive; corruption stops.
        let old = net.set_adversary(Adversary::none());
        assert!(!old.is_adaptive());
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true]));
        let d = net.exchange(t);
        assert_eq!(d.received(1, 0), Some(&BitVec::from_bools(&[true])));
        assert_eq!(net.rounds(), 2);
        assert_eq!(net.stats().edges_corrupted, 1, "no new corruption");
        assert_eq!(net.history().records().len(), 2);
        assert_eq!(net.published().len(), 1);
    }

    #[test]
    fn set_alpha_raises_the_budget_between_rounds() {
        let mut net = Network::new(8, 4, 0.0, Adversary::none());
        assert_eq!(net.fault_budget(), 0);
        let t = net.traffic();
        net.exchange(t);
        net.set_alpha(0.5);
        assert_eq!(net.fault_budget(), 4);
        assert_eq!(net.rounds(), 1, "counters survive the switch");
    }

    #[test]
    fn densified_rounds_reuse_the_pooled_matrix() {
        // n = 4: the 1/16 load threshold is one frame, so every non-empty
        // round densifies; after the first reclaim the matrix buffer must
        // circulate instead of being reallocated.
        let mut net = Network::new(4, 2, 0.0, Adversary::none());
        for round in 0..3 {
            let mut t = net.traffic();
            t.send(0, 1, BitVec::from_bools(&[true]));
            t.send(2, 3, BitVec::from_bools(&[false]));
            let d = net.exchange(t);
            net.reclaim(d);
            assert_eq!(
                net.arena.pooled_matrices(),
                1,
                "round {round}: reclaimed matrix must be pooled"
            );
        }
    }

    #[test]
    fn sparse_topology_delivers_on_edges_only() {
        let topo = Topology::ring(4);
        let mut net = Network::on_topology(topo, 4, 0.0, Adversary::none());
        assert!(!net.topology().is_complete());
        assert_eq!(net.fault_budget_of(0), 0);
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true]));
        t.send(3, 0, BitVec::from_bools(&[false, true]));
        let d = net.exchange(t);
        assert_eq!(d.received(1, 0), Some(&BitVec::from_bools(&[true])));
        assert_eq!(d.received(0, 3), Some(&BitVec::from_bools(&[false, true])));
    }

    #[test]
    #[should_panic(expected = "not a topology edge")]
    fn sparse_topology_rejects_non_edge_sends() {
        let mut net = Network::on_topology(Topology::ring(4), 4, 0.0, Adversary::none());
        let mut t = net.traffic();
        t.send(0, 2, BitVec::from_bools(&[true])); // a chord, not a ring edge
    }

    #[test]
    #[should_panic(expected = "not a topology edge")]
    fn handleless_traffic_is_validated_at_exchange() {
        let mut net = Network::on_topology(Topology::ring(4), 4, 0.0, Adversary::none());
        // Traffic::new has no topology handle; try_exchange re-checks.
        let mut t = Traffic::new(4, 4);
        t.send(0, 2, BitVec::from_bools(&[true]));
        let _ = net.try_exchange(t);
    }

    #[test]
    fn sparse_plan_violations_are_errors() {
        struct Noop;
        impl crate::adversary::Corruptor for Noop {
            fn corrupt(&mut self, _: &AdversaryView<'_>, _: &EdgeSet, _: &mut CorruptionScope<'_>) {
            }
        }
        // An off-topology claim: the chord {0, 2} on a 4-ring.
        let chord = |_round: u64, n: usize, _budget: usize| {
            let mut es = EdgeSet::new(n);
            es.insert(0, 2);
            es
        };
        let mut net = Network::on_topology(
            Topology::ring(4),
            2,
            0.9,
            Adversary::non_adaptive(chord, Noop),
        );
        let t = net.traffic();
        assert_eq!(
            net.try_exchange(t),
            Err(NetworkError::EdgeOffTopology {
                round: 0,
                from: 0,
                to: 2
            })
        );

        // A per-node budget violation: both ring edges at node 0 while
        // α = 0.4 allows only ⌊0.4·3⌋ = 1 per node.
        let greedy = |_round: u64, n: usize, _budget: usize| {
            let mut es = EdgeSet::new(n);
            es.insert(0, 1);
            es.insert(3, 0);
            es
        };
        let mut net = Network::on_topology(
            Topology::ring(4),
            2,
            0.4,
            Adversary::non_adaptive(greedy, Noop),
        );
        let t = net.traffic();
        assert_eq!(
            net.try_exchange(t),
            Err(NetworkError::NodeBudgetExceeded {
                round: 0,
                node: 0,
                degree: 2,
                budget: 1
            })
        );
    }

    #[test]
    fn sparse_nonadaptive_corruption_flows_through_edges_on() {
        // A topology-aware plan camping one real ring edge: corruption
        // proceeds and the stats count it.
        let plan = single_edge_plan(0, 1);
        let mut net = Network::on_topology(
            Topology::ring(4),
            4,
            0.9, // ⌊0.9·3⌋ = 2 per node: one edge is comfortably legal
            Adversary::non_adaptive(plan, FlipEverything),
        );
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true, true]));
        t.send(1, 2, BitVec::from_bools(&[false]));
        let d = net.exchange(t);
        assert_eq!(d.received(1, 0), Some(&BitVec::from_bools(&[false, false])));
        assert_eq!(d.received(2, 1), Some(&BitVec::from_bools(&[false])));
        assert_eq!(net.stats().edges_corrupted, 1);
        assert_eq!(net.stats().frames_corrupted, 1);
    }

    #[test]
    fn round_counter_advances() {
        let mut net = Network::new(2, 1, 0.0, Adversary::none());
        for i in 0..5 {
            assert_eq!(net.rounds(), i);
            let t = net.traffic();
            net.exchange(t);
        }
        assert_eq!(net.rounds(), 5);
    }
}
