//! Regenerates Table 1 and every figure-shaped experiment of the paper.
//!
//! ```sh
//! cargo run --release -p bdclique-bench --bin tables            # everything
//! cargo run --release -p bdclique-bench --bin tables -- t1r3   # one experiment
//! ```
//!
//! Experiment ids (see `DESIGN.md` §2): `t1r1 t1r2 t1r3 t1r4 route matching
//! frontier compiler codes ldc sketch cfree querypath largen`.

use bdclique_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");
    let trials = std::env::var("BDC_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5usize);

    println!("bdclique experiment suite (trials per config: {trials})");
    println!("paper: Fischer-Parter, PODC 2025 (arXiv:2505.05735)");

    if want("t1r1") {
        println!("{}", exp::table1_row1(trials).render());
    }
    if want("t1r2") {
        println!("{}", exp::table1_row2(trials.min(3)).render());
    }
    if want("t1r3") {
        println!("{}", exp::table1_row3(trials).render());
    }
    if want("t1r4") {
        println!("{}", exp::table1_row4(trials).render());
    }
    if want("route") {
        for t in exp::routing_threshold() {
            println!("{}", t.render());
        }
    }
    if want("matching") {
        println!("{}", exp::matching_separation(trials).render());
    }
    if want("frontier") {
        println!("{}", exp::frontier(trials.min(3)).render());
    }
    if want("compiler") {
        println!("{}", exp::compiler_overhead().render());
    }
    if want("codes") {
        println!("{}", exp::ablation_codes(trials * 8).render());
    }
    if want("ldc") {
        println!("{}", exp::ablation_ldc(trials * 4).render());
    }
    if want("sketch") {
        println!("{}", exp::ablation_sketch(trials * 20).render());
    }
    if want("cfree") {
        println!("{}", exp::ablation_coverfree().render());
    }
    if want("querypath") {
        println!("{}", exp::ablation_querypath(trials.min(3)).render());
    }
    if want("largen") {
        println!("{}", exp::large_n_smoke().render());
    }
}
