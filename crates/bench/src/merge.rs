//! Folding sharded scenario documents back into one.
//!
//! `tables --shard i/m` runs the cells whose seed-stream state falls in
//! shard `i` of `m` and emits a normal scenario-v1 JSON document holding
//! just those cells. This module implements the inverse: given every
//! shard's document, [`merge_documents`] reassembles one document carrying
//! the union of the cells, scenario by scenario — the machine-readable
//! output of a fleet run is indistinguishable in content from a
//! single-machine run (cell *order* follows shard order; consumers key
//! cells by their seed, which is unique per cell).
//!
//! The reader is the same hand-rolled JSON parser the trajectory ledger
//! uses ([`crate::trajectory::parse_json`]) — the workspace has no serde.

use crate::scenario::SCHEMA;
use crate::trajectory::{parse_json, Json};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders a parsed [`Json`] tree back to text. Numbers that are exact
/// integers print without a fractional part; object field order is
/// preserved from the source document.
fn render_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(v) if !v.is_finite() => out.push_str("null"),
        Json::Num(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => {
            let _ = write!(out, "{}", *v as i64);
        }
        Json::Num(v) => {
            let _ = write!(out, "{v}");
        }
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_json(&Json::Str(key.clone()), out);
                out.push(':');
                render_json(value, out);
            }
            out.push('}');
        }
    }
}

/// One scenario being reassembled across shards.
struct MergedScenario {
    name: String,
    title: Json,
    wall_secs: f64,
    cells: Vec<Json>,
    seen_seeds: HashSet<String>,
}

/// Merges shard documents (as `(label, text)` pairs — the label names the
/// shard in error messages, typically its file path) into one scenario-v1
/// document. Scenarios with the same name concatenate their cells in input
/// order and sum their wall-clock; `generator`, `git`, and `base_trials`
/// come from the first document, with mismatched `base_trials` rejected
/// (shards of one run must share the trial count).
///
/// # Errors
///
/// A human-readable message on unparsable input, schema mismatch,
/// inconsistent `base_trials`, or a cell seed appearing in two shards
/// (overlapping shards indicate a mis-specified `--shard` split).
pub fn merge_documents(inputs: &[(String, String)]) -> Result<String, String> {
    if inputs.is_empty() {
        return Err("nothing to merge".to_string());
    }
    let mut base_trials: Option<f64> = None;
    let mut generator = Json::Null;
    let mut git = Json::Null;
    let mut merged: Vec<MergedScenario> = Vec::new();
    for (label, text) in inputs {
        let doc = parse_json(text).map_err(|e| format!("{label}: {e}"))?;
        match doc.get("schema") {
            Some(Json::Str(s)) if s == SCHEMA => {}
            other => return Err(format!("{label}: schema is {other:?}, expected {SCHEMA:?}")),
        }
        let trials = doc
            .get("base_trials")
            .and_then(|v| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .ok_or_else(|| format!("{label}: missing base_trials"))?;
        match base_trials {
            None => {
                base_trials = Some(trials);
                generator = doc.get("generator").cloned().unwrap_or(Json::Null);
                git = doc.get("git").cloned().unwrap_or(Json::Null);
            }
            Some(first) if first != trials => {
                return Err(format!(
                    "{label}: base_trials {trials} != {first} from the first shard"
                ))
            }
            Some(_) => {}
        }
        let Some(Json::Arr(scenarios)) = doc.get("scenarios") else {
            return Err(format!("{label}: missing scenarios array"));
        };
        for scenario in scenarios {
            let name = scenario
                .get("name")
                .and_then(|v| match v {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .ok_or_else(|| format!("{label}: scenario without a name"))?;
            let wall = scenario
                .get("wall_secs")
                .and_then(|v| match v {
                    Json::Num(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or(0.0);
            let Some(Json::Arr(cells)) = scenario.get("cells") else {
                return Err(format!("{label}: scenario {name} without cells"));
            };
            let slot = match merged.iter_mut().find(|m| m.name == name) {
                Some(slot) => slot,
                None => {
                    merged.push(MergedScenario {
                        name: name.clone(),
                        title: scenario.get("title").cloned().unwrap_or(Json::Null),
                        wall_secs: 0.0,
                        cells: Vec::new(),
                        seen_seeds: HashSet::new(),
                    });
                    merged.last_mut().expect("just pushed")
                }
            };
            slot.wall_secs += wall;
            for cell in cells {
                if let Some(Json::Str(seed)) = cell.get("seed") {
                    if !slot.seen_seeds.insert(seed.clone()) {
                        return Err(format!(
                            "{label}: scenario {name} cell seed {seed} already \
                             merged from an earlier shard (overlapping --shard split?)"
                        ));
                    }
                }
                slot.cells.push(cell.clone());
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\"schema\":");
    render_json(&Json::Str(SCHEMA.to_string()), &mut out);
    out.push_str(",\"generator\":");
    render_json(&generator, &mut out);
    out.push_str(",\"git\":");
    render_json(&git, &mut out);
    let _ = write!(
        out,
        ",\"base_trials\":{},\"merged_from\":{},\"scenarios\":[",
        base_trials.unwrap_or(0.0) as i64,
        inputs.len()
    );
    for (i, scenario) in merged.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        render_json(&Json::Str(scenario.name.clone()), &mut out);
        out.push_str(",\"title\":");
        render_json(&scenario.title, &mut out);
        let _ = write!(out, ",\"wall_secs\":");
        render_json(&Json::Num(scenario.wall_secs), &mut out);
        out.push_str(",\"cells\":[");
        for (j, cell) in scenario.cells.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            render_json(cell, &mut out);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{emit_json, run_configured, Cell, CellKind, RunConfig, Scenario, Value};
    use std::sync::Arc;

    fn grid(cells: usize) -> Scenario {
        Scenario {
            name: "merge-test",
            title: "merge test".into(),
            headers: vec!["k", "twice"],
            cells: (0..cells)
                .map(|k| Cell {
                    coords: vec![("k", Value::u(k))],
                    kind: CellKind::Custom(Arc::new(move |_ctx| vec![("twice", Value::u(2 * k))])),
                })
                .collect(),
        }
    }

    /// Seed-keyed cell content of every scenario in a document.
    fn cell_index(text: &str) -> Vec<(String, String, String)> {
        let doc = parse_json(text).unwrap();
        let Some(Json::Arr(scenarios)) = doc.get("scenarios") else {
            panic!("no scenarios")
        };
        let mut out = Vec::new();
        for s in scenarios {
            let name = match s.get("name") {
                Some(Json::Str(n)) => n.clone(),
                _ => panic!("unnamed scenario"),
            };
            let Some(Json::Arr(cells)) = s.get("cells") else {
                panic!("no cells")
            };
            for c in cells {
                let seed = match c.get("seed") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => panic!("cell without seed"),
                };
                let mut body = String::new();
                render_json(c.get("metrics").unwrap(), &mut body);
                out.push((name.clone(), seed, body));
            }
        }
        out.sort();
        out
    }

    /// Two complementary shards merge back into the full grid: same cell
    /// set, same per-cell metrics, no duplicates, wall clocks summed.
    #[test]
    fn shards_reassemble_the_full_grid() {
        let spec = grid(6);
        let full = run_configured(&spec, &RunConfig::default());
        let full_doc = emit_json(&[full], 1);
        let shard_docs: Vec<(String, String)> = (0..2)
            .map(|i| {
                let cfg = RunConfig {
                    shard: Some((i, 2)),
                    ..RunConfig::default()
                };
                let result = run_configured(&spec, &cfg);
                (format!("shard{i}"), emit_json(&[result], 1))
            })
            .collect();
        // The shard split is nontrivial: both sides carry cells.
        for (label, doc) in &shard_docs {
            let count = cell_index(doc).len();
            assert!(count > 0 && count < 6, "{label} has {count} cells");
        }
        let merged = merge_documents(&shard_docs).unwrap();
        assert_eq!(cell_index(&merged), cell_index(&full_doc));
        let reparsed = parse_json(&merged).unwrap();
        assert_eq!(reparsed.get("schema"), Some(&Json::Str(SCHEMA.to_string())));
        assert_eq!(reparsed.get("merged_from"), Some(&Json::Num(2.0)));
    }

    /// Overlapping shards (same cell in two inputs) are rejected, as are
    /// schema and trial-count mismatches and garbage input.
    #[test]
    fn merge_rejects_inconsistent_inputs() {
        let spec = grid(4);
        let doc = emit_json(&[run_configured(&spec, &RunConfig::default())], 1);
        let overlap = merge_documents(&[
            ("a".to_string(), doc.clone()),
            ("b".to_string(), doc.clone()),
        ])
        .unwrap_err();
        assert!(overlap.contains("already merged"), "{overlap}");
        let other_trials = emit_json(&[run_configured(&grid(0), &RunConfig::default())], 9);
        let mismatch = merge_documents(&[
            ("a".to_string(), doc.clone()),
            ("b".to_string(), other_trials),
        ])
        .unwrap_err();
        assert!(mismatch.contains("base_trials"), "{mismatch}");
        assert!(merge_documents(&[("x".to_string(), "{}".to_string())]).is_err());
        assert!(merge_documents(&[("x".to_string(), "not json".to_string())]).is_err());
        assert!(merge_documents(&[]).is_err());
    }

    #[test]
    fn render_json_round_trips_through_the_parser() {
        let source = r#"{"a":[1,2.5,null,true,"x\"y"],"b":{"c":-3}}"#;
        let parsed = parse_json(source).unwrap();
        let mut rendered = String::new();
        render_json(&parsed, &mut rendered);
        assert_eq!(parse_json(&rendered).unwrap(), parsed);
        // Integer-valued floats print as integers.
        assert!(rendered.contains("[1,2.5,null"), "{rendered}");
    }
}
