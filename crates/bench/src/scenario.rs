//! The declarative scenario engine: experiment grids as data.
//!
//! A [`Scenario`] is a named list of [`Cell`]s — one cell per output row —
//! where each cell is either a **trial grid point** (protocol ×
//! [`AdversarySpec`] × `n` × `b` × bandwidth × α × trials, executed by the
//! engine and folded into an [`Aggregate`]) or a **custom measurement**
//! (routing sweeps, code ablations, …) that receives a seed stream and
//! returns metrics. The engine owns everything the hand-rolled experiment
//! loops used to duplicate:
//!
//! * **Parallelism** — independent cells fan out across cores, and the
//!   trials inside a cell fan out again; [`run_serial`] is the bit-identity
//!   oracle (regression-tested).
//! * **Seeding** — every cell derives its own [`SeedStream`] by hashing the
//!   scenario name and the *full* cell coordinates; trial `t` forks that
//!   stream by index and splits it into independent instance / adversary /
//!   protocol seeds ([`TrialSeeds`]). Changing any single coordinate
//!   changes the cell's entire stream; no two cells share randomness.
//! * **Backends** — one run renders as an aligned-text [`Table`] and/or
//!   serializes to JSON ([`emit_json`]) for the machine-readable perf
//!   trajectory. The JSON schema is documented in the README
//!   ("Scenario engine" section) and versioned via [`SCHEMA`].

use crate::checkpoint::{run_trial_checkpointed, CheckpointConfig};
use crate::{
    fold_trials, run_trial_seeded_traced_on, AdversarySpec, Aggregate, Table, TopologySpec,
    TrialSeeds,
};
use bdclique_core::driver::RoundDelta;
use bdclique_core::protocols::AllToAllProtocol;
use bdclique_core::routing::{shared_codeword_cache, CodewordCache};
use bdclique_core::CoreError;
use bdclique_netsim::SeedStream;
use rayon::prelude::*;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// JSON schema identifier emitted at the top of every document.
pub const SCHEMA: &str = "bdclique-bench/scenario-v1";

/// A coordinate or metric value: typed for JSON, formatted for tables.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, rendered with `prec` decimals in tables (full precision in
    /// JSON).
    Float {
        /// The value.
        v: f64,
        /// Table decimal places.
        prec: usize,
    },
    /// Free-form string.
    Str(String),
    /// A success ratio; renders `ok/of`, or `n/a` when `of == 0` (a
    /// zero-trial cell must never print a misleading `0/0`).
    Rate {
        /// Successes.
        ok: usize,
        /// Attempts.
        of: usize,
    },
    /// Not applicable / no data; renders `n/a`, serializes as `null`.
    Missing,
}

impl Value {
    /// Unsigned integer value.
    pub fn u(v: usize) -> Self {
        Value::U64(v as u64)
    }

    /// Float with 1 table decimal.
    pub fn f1(v: f64) -> Self {
        Value::Float { v, prec: 1 }
    }

    /// Float with 3 table decimals.
    pub fn f3(v: f64) -> Self {
        Value::Float { v, prec: 3 }
    }

    /// Optional float with 1 table decimal; `None` renders `n/a`.
    pub fn opt_f1(v: Option<f64>) -> Self {
        v.map_or(Value::Missing, Value::f1)
    }

    /// String value.
    pub fn s(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Success-rate value.
    pub fn rate(ok: usize, of: usize) -> Self {
        Value::Rate { ok, of }
    }

    /// Canonical byte-exact encoding used for seed derivation: floats encode
    /// their bit pattern so two coordinates differing anywhere in the value
    /// never alias.
    fn canon(&self) -> String {
        match self {
            Value::U64(v) => format!("u{v}"),
            Value::I64(v) => format!("i{v}"),
            Value::Float { v, .. } => format!("f{:016x}", v.to_bits()),
            Value::Str(s) => format!("s{s}"),
            Value::Rate { ok, of } => format!("r{ok}/{of}"),
            Value::Missing => "m".to_string(),
        }
    }

    /// JSON encoding (numbers stay numbers; non-finite floats and
    /// [`Value::Missing`] become `null`).
    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::Float { v, .. } if v.is_finite() => format!("{v}"),
            Value::Float { .. } | Value::Missing => "null".to_string(),
            Value::Str(s) => json_string(s),
            Value::Rate { ok, of } => format!("{{\"ok\":{ok},\"of\":{of}}}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Float { v, prec } => write!(f, "{v:.prec$}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Rate { of: 0, .. } => write!(f, "n/a"),
            Value::Rate { ok, of } => write!(f, "{ok}/{of}"),
            Value::Missing => write!(f, "n/a"),
        }
    }
}

/// Builds a protocol instance from the trial's protocol seed. Deterministic
/// protocols ignore the argument; randomized ones should store it in their
/// `seed` field so every trial draws fresh protocol coins.
pub type ProtocolFactory = Arc<dyn Fn(u64) -> Box<dyn AllToAllProtocol> + Send + Sync>;

/// Execution context handed to a custom cell.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    /// The cell's seed stream; fork per sub-measurement.
    pub stream: SeedStream,
    /// Whether nested trial sweeps may fan out across cores — `false`
    /// under [`run_serial`], so the determinism oracle really is
    /// single-threaded even through custom cells (pass this to
    /// [`run_trials`]).
    pub parallel: bool,
}

/// A bespoke measurement cell: receives the cell's execution context,
/// returns its row metrics. Runs once (not per trial); anything
/// trial-shaped inside should fork `ctx.stream` per sub-measurement and
/// honor `ctx.parallel`.
pub type CustomJob = Arc<dyn Fn(&CellCtx) -> Vec<(&'static str, Value)> + Send + Sync>;

/// Maps a finished trial aggregate to the cell's row metrics.
pub type Presenter = fn(&TrialJob, &Aggregate) -> Vec<(&'static str, Value)>;

/// The trial-grid flavor of a cell: the engine runs `trials` seeded trials
/// of `protocol` against `adversary` and folds them.
pub struct TrialJob {
    /// Protocol under test (built per trial from the protocol seed).
    pub protocol: ProtocolFactory,
    /// Canonical protocol name, part of the cell's seed coordinates.
    pub protocol_key: &'static str,
    /// Attached adversary.
    pub adversary: AdversarySpec,
    /// Communication graph ([`TopologySpec::Complete`] is the historical
    /// clique path and leaves the cell's seed stream untouched).
    pub topology: TopologySpec,
    /// Nodes.
    pub n: usize,
    /// Message bits per ordered pair.
    pub b: usize,
    /// Link bandwidth `B` in bits.
    pub bandwidth: usize,
    /// Fault fraction α (degree budget `⌊αn⌋`).
    pub alpha: f64,
    /// Trials to run.
    pub trials: usize,
    /// Metric projection for the table row / JSON metrics map.
    pub present: Presenter,
    /// Record trial 0's per-round stat deltas (driver `RoundTrace`) into
    /// the cell result's `round_trace` JSON section. Tracing never perturbs
    /// the trial outcomes — observers only read stat deltas.
    pub trace: bool,
}

/// What a cell executes.
pub enum CellKind {
    /// Engine-run seeded trials.
    Trials(TrialJob),
    /// Bespoke measurement.
    Custom(CustomJob),
}

/// One scenario cell — one output row, one seed stream.
pub struct Cell {
    /// Named coordinates identifying the cell (rendered as leading table
    /// columns, hashed into the seed stream).
    pub coords: Vec<(&'static str, Value)>,
    /// The work.
    pub kind: CellKind,
}

impl Cell {
    /// The cell's seed stream: scenario name, every coordinate, and (for
    /// trial cells) the full parameter tuple, hashed in order. The trial
    /// *count* is deliberately excluded so raising `--trials` extends a
    /// cell's seed sequence instead of reshuffling it.
    pub fn stream(&self, scenario: &str) -> SeedStream {
        let mut s = SeedStream::from_label(scenario);
        for (key, value) in &self.coords {
            s = s.fork(&format!("{key}={}", value.canon()));
        }
        if let CellKind::Trials(job) = &self.kind {
            let mut coord = format!(
                "proto={};adv={};n={};b={};bw={};alpha={:016x}",
                job.protocol_key,
                job.adversary.key(),
                job.n,
                job.b,
                job.bandwidth,
                job.alpha.to_bits()
            );
            // The topology key joins the coordinate tuple only off the
            // clique: every pre-topology cell keeps its historical seed
            // stream byte-identical.
            if !job.topology.is_complete() {
                coord.push_str(&format!(";topo={}", job.topology.key()));
            }
            s = s.fork(&coord);
        }
        s
    }
}

/// A named scenario in the suite registry
/// ([`crate::experiments::registry`]).
pub struct RegistryEntry {
    /// Registry name (CLI `--scenario` argument).
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// Builds the scenario from a base trial count (builders apply their
    /// own historical scaling).
    pub build: fn(usize) -> Scenario,
}

/// A declarative experiment: a title, column headers, and the cell grid.
pub struct Scenario {
    /// Registry name (also the root of every cell's seed derivation).
    pub name: &'static str,
    /// Table title.
    pub title: String,
    /// Column headers; each resolves against cell coordinates, then metrics,
    /// then the built-in `secs` (per-cell wall time).
    pub headers: Vec<&'static str>,
    /// The grid.
    pub cells: Vec<Cell>,
}

/// A finished cell: coordinates, metrics, and provenance.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's coordinates, as specified.
    pub coords: Vec<(&'static str, Value)>,
    /// Metrics produced by the presenter / custom job.
    pub metrics: Vec<(&'static str, Value)>,
    /// The folded aggregate (trial cells only).
    pub aggregate: Option<Aggregate>,
    /// Trial 0's per-round stat deltas (trial cells with
    /// [`TrialJob::trace`] enabled only).
    pub round_trace: Option<Vec<RoundDelta>>,
    /// The cell's seed-stream state (reproduces the whole cell).
    pub seed: u64,
    /// Wall-clock seconds this cell's work consumed.
    pub secs: f64,
}

impl CellResult {
    /// Looks up `header` among coordinates, then metrics, then the built-in
    /// `secs` column.
    pub fn value_of(&self, header: &str) -> Option<Value> {
        self.coords
            .iter()
            .chain(self.metrics.iter())
            .find(|(key, _)| *key == header)
            .map(|(_, value)| value.clone())
            .or_else(|| (header == "secs").then(|| Value::f1(self.secs)))
    }

    /// Seed-and-timing-independent equality, used by the determinism oracle.
    ///
    /// The per-cell codeword-cache counters (`cache_hits` / `cache_misses`)
    /// are excluded: trials racing on the shared cache reorder probe/insert
    /// interleavings, so the *counters* differ between parallel and serial
    /// runs even though the cached content — and therefore every outcome the
    /// aggregate folds — is bit-identical.
    pub fn same_outcome(&self, other: &CellResult) -> bool {
        let deterministic = |metrics: &[(&'static str, Value)]| -> Vec<(&'static str, Value)> {
            metrics
                .iter()
                .filter(|(key, _)| *key != "cache_hits" && *key != "cache_misses")
                .cloned()
                .collect()
        };
        self.coords == other.coords
            && deterministic(&self.metrics) == deterministic(&other.metrics)
            && self.aggregate == other.aggregate
            && self.round_trace == other.round_trace
            && self.seed == other.seed
    }
}

/// A finished scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Registry name.
    pub name: &'static str,
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<&'static str>,
    /// One result per cell, in grid order.
    pub cells: Vec<CellResult>,
    /// Wall-clock seconds for the whole scenario (parallel cells overlap, so
    /// this is typically less than the sum of per-cell `secs`).
    pub wall_secs: f64,
}

impl ScenarioResult {
    /// Renders the run as an aligned-text [`Table`].
    pub fn table(&self) -> Table {
        let mut table = Table::new(self.title.clone(), &self.headers);
        for cell in &self.cells {
            table.row(
                self.headers
                    .iter()
                    .map(|h| cell.value_of(h).unwrap_or(Value::Missing).to_string())
                    .collect(),
            );
        }
        table
    }

    /// Serializes the run as one JSON object (see [`emit_json`] for the
    /// enclosing document).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|cell| {
                let coords = json_object(cell.coords.iter());
                let metrics = json_object(cell.metrics.iter());
                let aggregate = cell
                    .aggregate
                    .as_ref()
                    .map_or("null".to_string(), aggregate_json);
                let round_trace = cell
                    .round_trace
                    .as_deref()
                    .map_or("null".to_string(), round_trace_json);
                format!(
                    "{{\"coords\":{coords},\"seed\":\"{seed:#018x}\",\"secs\":{secs},\
                     \"aggregate\":{aggregate},\"round_trace\":{round_trace},\
                     \"metrics\":{metrics}}}",
                    seed = cell.seed,
                    secs = json_f64(cell.secs),
                )
            })
            .collect();
        format!(
            "{{\"name\":{name},\"title\":{title},\"wall_secs\":{wall},\"cells\":[{cells}]}}",
            name = json_string(self.name),
            title = json_string(&self.title),
            wall = json_f64(self.wall_secs),
            cells = cells.join(",")
        )
    }
}

/// How to execute a scenario beyond the default parallel full-grid run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Run cells (and trials within them) serially — the determinism
    /// oracle. `false` here is what [`run_serial`] passes.
    pub serial: bool,
    /// `(index, modulus)`: run only the cells whose seed-stream state
    /// satisfies `seed % modulus == index`. Complementary shards partition
    /// the grid exactly (every cell lands in one shard), and the sharded
    /// JSON documents fold back together with
    /// [`crate::merge::merge_documents`]. Sharding never changes a cell's
    /// seed stream — a cell computes identical results in whichever shard
    /// runs it.
    pub shard: Option<(usize, usize)>,
    /// Checkpoint trial cells mid-trial and resume them from existing
    /// checkpoint files (see [`crate::checkpoint`]). Checkpointed cells
    /// skip per-round tracing; their `secs` include the wall-clock of
    /// resumed prior segments.
    pub checkpoint: Option<CheckpointConfig>,
}

/// Runs a scenario: cells fan out across cores, and each trial cell's
/// trials fan out again. Deterministic up to wall-clock fields — the seeds,
/// metrics, and aggregates are bit-identical to [`run_serial`].
pub fn run(spec: &Scenario) -> ScenarioResult {
    run_configured(spec, &RunConfig::default())
}

/// Single-threaded reference implementation of [`run`]: same seeds, same
/// fold, one thread. Kept public as the determinism oracle.
pub fn run_serial(spec: &Scenario) -> ScenarioResult {
    run_configured(
        spec,
        &RunConfig {
            serial: true,
            ..RunConfig::default()
        },
    )
}

/// [`run`] with explicit execution options (serial oracle mode, shard
/// selection, mid-trial checkpointing).
pub fn run_configured(spec: &Scenario, cfg: &RunConfig) -> ScenarioResult {
    let start = Instant::now();
    let selected: Vec<&Cell> = spec
        .cells
        .iter()
        .filter(|cell| match cfg.shard {
            None => true,
            Some((index, modulus)) => {
                cell.stream(spec.name).seed() % modulus as u64 == index as u64
            }
        })
        .collect();
    let cells: Vec<CellResult> = if cfg.serial {
        selected
            .iter()
            .map(|cell| run_cell(spec.name, cell, cfg))
            .collect()
    } else {
        (0..selected.len())
            .into_par_iter()
            .map(|i| run_cell(spec.name, selected[i], cfg))
            .collect()
    };
    ScenarioResult {
        name: spec.name,
        title: spec.title.clone(),
        headers: spec.headers.clone(),
        cells,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

fn run_cell(scenario: &str, cell: &Cell, cfg: &RunConfig) -> CellResult {
    let stream = cell.stream(scenario);
    let parallel = !cfg.serial;
    let start = Instant::now();
    let mut prior_secs = 0.0;
    let (metrics, aggregate, round_trace) = match &cell.kind {
        CellKind::Trials(job) => {
            let (agg, trace, (hits, misses)) = match &cfg.checkpoint {
                None => run_trials_traced(job, &stream, parallel),
                Some(ckpt) => {
                    let key = format!("{scenario}-{:016x}", stream.seed());
                    let (agg, prior, cache) =
                        run_trials_checkpointed(job, &stream, parallel, ckpt, &key);
                    prior_secs = prior;
                    (agg, None, cache)
                }
            };
            let mut metrics = (job.present)(job, &agg);
            // Cross-trial codeword-cache effectiveness; counters only
            // (content is correctness-neutral), and excluded from
            // `same_outcome` — see there.
            metrics.push(("cache_hits", Value::U64(hits)));
            metrics.push(("cache_misses", Value::U64(misses)));
            (metrics, Some(agg), trace)
        }
        CellKind::Custom(job) => (job(&CellCtx { stream, parallel }), None, None),
    };
    CellResult {
        coords: cell.coords.clone(),
        metrics,
        aggregate,
        round_trace,
        seed: stream.seed(),
        // A resumed cell reports the sum of its wall-clock segments: what
        // the computation cost across interruptions, which is what the
        // trajectory ledger should gate on.
        secs: start.elapsed().as_secs_f64() + prior_secs,
    }
}

/// The checkpointing counterpart of [`run_trials_traced`]: every trial runs
/// through [`run_trial_checkpointed`] under its own deterministic file key
/// (`<cell key>-t<trial>`), resuming from leftover checkpoints of an
/// interrupted earlier run. Returns the fold, the summed prior-segment
/// seconds across resumed trials, and the cell's codeword-cache counters.
/// Per-round tracing is not supported here — a resumed trial has no round 0
/// to trace.
fn run_trials_checkpointed(
    job: &TrialJob,
    stream: &SeedStream,
    parallel: bool,
    ckpt: &CheckpointConfig,
    cell_key: &str,
) -> (Aggregate, f64, (u64, u64)) {
    let cache = shared_codeword_cache(CodewordCache::DEFAULT_MAX_SYMBOLS);
    let one = |t: usize| {
        let seeds = TrialSeeds::derive(stream.fork_u64(t as u64).seed());
        let mut proto = (job.protocol)(seeds.protocol);
        proto.attach_codeword_cache(cache.clone());
        run_trial_checkpointed(
            proto.as_ref(),
            job.topology,
            job.n,
            job.b,
            job.bandwidth,
            job.alpha,
            job.adversary,
            seeds,
            ckpt,
            &format!("{cell_key}-t{t}"),
        )
    };
    let results: Vec<Result<(crate::Trial, f64), CoreError>> = if parallel {
        (0..job.trials).into_par_iter().map(one).collect()
    } else {
        (0..job.trials).map(one).collect()
    };
    let prior_secs: f64 = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|(_, prior)| *prior)
        .sum();
    let agg = fold_trials(
        job.trials,
        results.into_iter().map(|r| r.map(|(t, _)| t)).collect(),
    );
    let cache_stats = cache.lock().expect("codeword cache poisoned").stats();
    (agg, prior_secs, cache_stats)
}

/// Runs one trial cell's trials (parallel or serial) and folds in trial
/// order. Public for custom cells that embed trial sweeps (e.g. the
/// fault-tolerance frontier): fork the cell stream per sweep point and pass
/// the fork here, so every sweep point owns a distinct seed sequence.
pub fn run_trials(job: &TrialJob, stream: &SeedStream, parallel: bool) -> Aggregate {
    run_trials_traced(job, stream, parallel).0
}

/// [`run_trials`] plus trial 0's per-round trace when [`TrialJob::trace`]
/// is set, plus the cell's codeword-cache `(hits, misses)`. Tracing rides
/// along on trial 0 only — observers read stat deltas, never randomness —
/// so the folded [`Aggregate`] is bit-identical with tracing on or off,
/// parallel or serial.
///
/// One [`CodewordCache`] spans **all the cell's trials**: every trial's
/// protocol gets the shared handle via
/// [`AllToAllProtocol::attach_codeword_cache`], so trial `t`'s
/// Reed–Solomon encodes reuse trial `t-1`'s (cells with a fixed instance
/// seed re-encode the identical chunks otherwise). The cache is
/// content-addressed and equality-verified, so the fold is bit-identical
/// to uncached trials (regression-tested); only the hit/miss *counters*
/// depend on trial interleaving.
pub fn run_trials_traced(
    job: &TrialJob,
    stream: &SeedStream,
    parallel: bool,
) -> (Aggregate, Option<Vec<RoundDelta>>, (u64, u64)) {
    let cache = shared_codeword_cache(CodewordCache::DEFAULT_MAX_SYMBOLS);
    let one = |t: usize| {
        let seeds = TrialSeeds::derive(stream.fork_u64(t as u64).seed());
        let mut proto = (job.protocol)(seeds.protocol);
        proto.attach_codeword_cache(cache.clone());
        run_trial_seeded_traced_on(
            proto.as_ref(),
            job.topology,
            job.n,
            job.b,
            job.bandwidth,
            job.alpha,
            job.adversary,
            seeds,
            job.trace && t == 0,
        )
    };
    type TracedTrial = Result<(crate::Trial, Option<Vec<RoundDelta>>), CoreError>;
    let mut results: Vec<TracedTrial> = if parallel {
        (0..job.trials).into_par_iter().map(one).collect()
    } else {
        (0..job.trials).map(one).collect()
    };
    let round_trace = results
        .first_mut()
        .and_then(|r| r.as_mut().ok())
        .and_then(|(_, trace)| trace.take());
    let agg = fold_trials(
        job.trials,
        results
            .into_iter()
            .map(|r| r.map(|(trial, _)| trial))
            .collect(),
    );
    let cache_stats = cache.lock().expect("codeword cache poisoned").stats();
    (agg, round_trace, cache_stats)
}

/// Serializes finished scenario runs as one self-describing JSON document:
///
/// ```json
/// {"schema": "...", "generator": "...", "git": "...",
///  "base_trials": 5, "scenarios": [ScenarioResult…]}
/// ```
pub fn emit_json(results: &[ScenarioResult], base_trials: usize) -> String {
    let scenarios: Vec<String> = results.iter().map(ScenarioResult::to_json).collect();
    format!(
        "{{\"schema\":{schema},\"generator\":{generator},\"git\":{git},\
         \"base_trials\":{base_trials},\"scenarios\":[{scenarios}]}}",
        schema = json_string(SCHEMA),
        generator = json_string(concat!("bdclique-bench ", env!("CARGO_PKG_VERSION"))),
        git = json_string(&git_describe()),
        scenarios = scenarios.join(",")
    )
}

/// Best-effort `git describe` of the working tree, for provenance metadata;
/// `"unknown"` outside a git checkout.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serializes a per-round trace as a JSON array of per-round deltas.
fn round_trace_json(frames: &[RoundDelta]) -> String {
    let rounds: Vec<String> = frames
        .iter()
        .map(|f| {
            format!(
                "{{\"round\":{},\"vtime\":{},\"frames\":{},\"bits\":{},\"corrupted_edges\":{},\
                 \"corrupted_frames\":{}}}",
                f.round,
                f.vtime,
                f.stats.frames_sent,
                f.stats.bits_sent,
                f.stats.edges_corrupted,
                f.stats.frames_corrupted,
            )
        })
        .collect();
    format!("[{}]", rounds.join(","))
}

fn aggregate_json(agg: &Aggregate) -> String {
    format!(
        "{{\"trials\":{},\"completed\":{},\"perfect\":{},\"total_errors\":{},\
         \"mean_rounds\":{},\"mean_corrupted\":{},\"mean_bits\":{},\
         \"max_fault_degree\":{},\"infeasible\":{},\"failed\":{}}}",
        agg.trials,
        agg.completed,
        agg.perfect,
        agg.total_errors,
        json_opt_f64(agg.mean_rounds),
        json_opt_f64(agg.mean_corrupted),
        json_opt_f64(agg.mean_bits),
        agg.max_fault_degree,
        agg.infeasible,
        agg.failed,
    )
}

fn json_object<'a>(fields: impl Iterator<Item = &'a (&'static str, Value)>) -> String {
    let body: Vec<String> = fields
        .map(|(key, value)| format!("{}:{}", json_string(key), value.to_json()))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or("null".to_string(), json_f64)
}

/// Escapes and quotes a JSON string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_renders_na_for_zero_trials() {
        assert_eq!(Value::rate(0, 0).to_string(), "n/a");
        assert_eq!(Value::rate(3, 5).to_string(), "3/5");
        assert_eq!(Value::Missing.to_string(), "n/a");
    }

    #[test]
    fn value_canon_distinguishes_close_floats() {
        assert_ne!(
            Value::f1(0.1).canon(),
            Value::f1(0.1 + f64::EPSILON).canon()
        );
        // Table rendering may collide (both "0.1") but seeds must not.
        assert_eq!(Value::f1(0.1).to_string(), "0.1");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn value_json_forms() {
        assert_eq!(Value::u(3).to_json(), "3");
        assert_eq!(Value::f1(0.5).to_json(), "0.5");
        assert_eq!(Value::rate(1, 4).to_json(), "{\"ok\":1,\"of\":4}");
        assert_eq!(Value::Missing.to_json(), "null");
        assert_eq!(
            Value::Float {
                v: f64::NAN,
                prec: 1
            }
            .to_json(),
            "null"
        );
    }

    #[test]
    fn custom_cell_runs_with_cell_stream() {
        let spec = Scenario {
            name: "test-custom",
            title: "custom".into(),
            headers: vec!["k", "seed_lo"],
            cells: vec![Cell {
                coords: vec![("k", Value::u(7))],
                kind: CellKind::Custom(Arc::new(|ctx: &CellCtx| {
                    vec![("seed_lo", Value::U64(ctx.stream.seed() & 0xff))]
                })),
            }],
        };
        let out = run(&spec);
        assert_eq!(out.cells.len(), 1);
        let expected = spec.cells[0].stream("test-custom").seed();
        assert_eq!(out.cells[0].seed, expected);
        assert_eq!(
            out.cells[0].value_of("seed_lo"),
            Some(Value::U64(expected & 0xff))
        );
        // The rendered table resolves coords, metrics, and the built-in secs.
        let rendered = out.table().render();
        assert!(rendered.contains("custom"));
        assert!(out.cells[0].value_of("secs").is_some());
    }
}
