//! Error type for the compiler crate.

use std::error::Error;
use std::fmt;

/// Errors raised by routing and protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The requested parameters cannot satisfy the decode-margin
    /// inequalities (the implementation's analogue of Lemma 4.5): e.g. α is
    /// too large for the code distance, or the cover-free family cannot be
    /// built.
    Infeasible {
        /// Human-readable diagnosis.
        reason: String,
    },
    /// Malformed protocol input (wrong sizes, out-of-range ids).
    InvalidInput {
        /// Human-readable diagnosis.
        reason: String,
    },
    /// A round observer stopped the run before the next round could start
    /// (e.g. a [`crate::driver::RoundBudget`] hit its cap). The network is
    /// left between rounds — no partial `exchange` ran.
    Aborted {
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn infeasible(reason: impl Into<String>) -> Self {
        CoreError::Infeasible {
            reason: reason.into(),
        }
    }

    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        CoreError::InvalidInput {
            reason: reason.into(),
        }
    }

    /// An observer-initiated abort (public: observers live outside this
    /// crate too).
    pub fn aborted(reason: impl Into<String>) -> Self {
        CoreError::Aborted {
            reason: reason.into(),
        }
    }
}

impl From<bdclique_snapshot::SnapError> for CoreError {
    fn from(e: bdclique_snapshot::SnapError) -> Self {
        CoreError::invalid(format!("snapshot: {e}"))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Infeasible { reason } => write!(f, "infeasible parameters: {reason}"),
            CoreError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            CoreError::Aborted { reason } => write!(f, "run aborted between rounds: {reason}"),
        }
    }
}

impl Error for CoreError {}
