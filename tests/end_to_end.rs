//! Workspace-level integration tests: cross-crate wiring through the
//! `bdclique` facade, compilers end to end under attack, and the full
//! substrate stack (codes → sketches → routing → protocols).

use bdclique::adversary::adaptive::GreedyLoad;
use bdclique::adversary::corruptors::PayloadCorruptor;
use bdclique::adversary::plans::RotatingMatching;
use bdclique::adversary::Payload;
use bdclique::bits::BitVec;
use bdclique::core::broadcast::broadcast;
use bdclique::core::cc::{SumAll, Transpose};
use bdclique::core::compiler::{compile, run_fault_free};
use bdclique::core::protocols::{AllToAllProtocol, DetHypercube, DetSqrt, NonAdaptiveAllToAll};
use bdclique::core::routing::RouterConfig;
use bdclique::core::AllToAllInstance;
use bdclique::netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn facade_quickstart_path() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let inst = AllToAllInstance::random(16, 2, &mut rng);
    let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 1));
    let mut net = Network::new(16, 9, 0.07, adversary);
    let out = DetSqrt::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
}

#[test]
fn broadcast_under_matching_attack() {
    let adversary = Adversary::non_adaptive(
        RotatingMatching::new(),
        PayloadCorruptor::new(Payload::Flip, 3),
    );
    let mut net = Network::new(32, 9, 1.0 / 16.0, adversary);
    let payload = BitVec::from_fn(100, |i| i % 3 == 1);
    let out = broadcast(&mut net, 5, &payload, &RouterConfig::default()).unwrap();
    for (v, got) in out.iter().enumerate() {
        assert_eq!(*got, payload, "node {v}");
    }
}

#[test]
fn compiled_transpose_under_attack_matches_reference() {
    let n = 16usize;
    let algo = Transpose {
        rows: (0..n)
            .map(|u| (0..n).map(|v| ((u * 31 + v * 7) % 251) as u64).collect())
            .collect(),
        width: 8,
    };
    let reference = run_fault_free(&algo, n);
    let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 9));
    let mut net = Network::new(n, 18, 0.07, adversary);
    let run = compile(&mut net, &algo, &DetHypercube::default()).unwrap();
    assert_eq!(run.outputs, reference);
}

#[test]
fn compiled_sum_with_randomized_protocol() {
    let n = 16usize;
    let algo = SumAll {
        inputs: (0..n as u64).map(|i| i * i + 1).collect(),
        width: 12,
    };
    let reference = run_fault_free(&algo, n);
    let adversary = Adversary::non_adaptive(
        RotatingMatching::new(),
        PayloadCorruptor::new(Payload::Flip, 4),
    );
    let mut net = Network::new(n, 24, 1.0 / 16.0, adversary);
    let proto = NonAdaptiveAllToAll {
        copies: 7,
        ..Default::default()
    };
    let run = compile(&mut net, &algo, &proto).unwrap();
    assert_eq!(run.outputs, reference);
}

#[test]
fn repeated_runs_are_deterministic() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let inst = AllToAllInstance::random(16, 1, &mut rng);
    let run = |seed: u64| {
        let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed));
        let mut net = Network::new(16, 9, 0.07, adversary);
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        (
            inst.count_errors(&out),
            net.rounds(),
            net.stats().edges_corrupted,
        )
    };
    assert_eq!(run(5), run(5), "same seeds, same run");
}

#[test]
fn stats_account_all_protocol_traffic() {
    let mut rng = ChaCha8Rng::seed_from_u64(30);
    let inst = AllToAllInstance::random(16, 1, &mut rng);
    let mut net = Network::new(16, 9, 0.0, Adversary::none());
    DetSqrt::default().run(&mut net, &inst).unwrap();
    let stats = *net.stats();
    assert!(stats.rounds > 0);
    assert!(stats.bits_sent > 0);
    assert!(stats.frames_sent > 0);
    assert_eq!(stats.edges_corrupted, 0);
    assert_eq!(stats.peak_fault_degree, 0);
}
