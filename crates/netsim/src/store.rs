//! Frame storage backends and the cross-round allocation arena.
//!
//! One round of clique traffic is logically an `n × n` matrix of optional
//! frames, but the paper's protocols are *sparse* most rounds: the √n-relay
//! waves, the cover-free router, and the relay-replication hops each queue
//! `O(n·k)` frames with `k ≪ n`. Materializing the dense matrix costs
//! `Θ(n²)` allocation and touch per round — at `n = 4096` that is ~16.7M
//! `Option<BitVec>` slots per round, which is what capped experiments at
//! toy sizes.
//!
//! [`FrameStore`] keeps both representations behind one interface:
//!
//! * **Dense** — the original row-major `Vec<Option<BitVec>>`; optimal for
//!   full-matrix rounds (`NaiveExchange`, the compiler's direct exchanges).
//! * **Sparse** — per-sender sorted adjacency rows `Vec<(to, frame)>`;
//!   `O(frames)` memory, `O(log deg)` lookups, and ascending-id iteration
//!   that keeps every consumer deterministic.
//!
//! [`crate::Traffic`] starts sparse and **auto-densifies** when the load
//! factor crosses [`DENSE_SWITCH_DIVISOR`] (frames ≥ n²/16), so callers never
//! choose a backend; benches and tests can pin one via
//! [`crate::Traffic::with_backend`].
//!
//! [`FrameArena`] amortizes the remaining per-round allocations across
//! rounds: emptied adjacency tables (with their capacity), reclaimed frame
//! `BitVec` buffers, and the dense matrix buffer itself are pooled on the
//! owning [`crate::Network`] and reissued instead of reallocated.

use bdclique_bits::BitVec;
use bdclique_snapshot::{Dec, Enc, SnapError};

/// Which concrete representation a [`crate::Traffic`] or
/// [`crate::Delivery`] currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Row-major `n × n` matrix of optional frames.
    Dense,
    /// Per-sender sorted adjacency rows.
    Sparse,
}

/// Auto-switch threshold: a sparse store densifies once
/// `frame_count · DENSE_SWITCH_DIVISOR ≥ n²` (load factor ≥ 1/16). Below it
/// the adjacency rows win on memory and iteration; above it the flat matrix
/// wins on lookup and insert. 1/16 keeps genuinely sparse rounds (≤1% load)
/// far from the switch while full-matrix rounds (NaiveExchange) pay for at
/// most a 1/16 prefix of sparse inserts before landing on the flat matrix.
pub const DENSE_SWITCH_DIVISOR: u64 = 16;

/// Upper bound on pooled adjacency tables (rows + inbox columns of one
/// round are at most `2n`; the cap just bounds a pathological caller).
const MAX_POOLED_TABLES: usize = 1 << 16;
/// Upper bound on pooled frame buffers. Sized for the stage-parallel unit
/// router's scatter rounds, which queue one frame per (source, relay) pair —
/// about `n · L ≈ 2²⁰` frames per round at `n = 4096`, `L = 255`. The pool
/// only ever holds what one round actually allocated, so small networks
/// never grow near the cap.
const MAX_POOLED_FRAMES: usize = 1 << 22;
/// Upper bound on pooled dense matrix buffers: one for the traffic being
/// built plus one for the delivery still being consumed.
const MAX_POOLED_MATRICES: usize = 2;

/// One sparse adjacency table: `(peer, frame)` pairs sorted by peer id.
/// Used both sender-major (traffic rows) and receiver-major (delivery
/// inbox columns).
pub(crate) type AdjTable = Vec<(u32, BitVec)>;

/// Cross-round pool of the allocations the round pipeline would otherwise
/// make fresh every round. Owned by the [`crate::Network`]; fed by
/// [`crate::Network::reclaim`] and the internal queue→deliver conversion.
#[derive(Debug, Default)]
pub(crate) struct FrameArena {
    tables: Vec<AdjTable>,
    frames: Vec<BitVec>,
    /// Spent dense matrix buffers (all-`None` after frame harvesting).
    /// Rounds that auto-densify reuse one instead of allocating and zeroing
    /// `n²` fresh slots — at `n = 4096` that allocation alone is ~0.5 GiB
    /// per densified round.
    matrices: Vec<Vec<Option<BitVec>>>,
}

impl FrameArena {
    /// A recycled (empty, capacity-preserving) adjacency table.
    fn take_table(&mut self) -> AdjTable {
        self.tables.pop().unwrap_or_default()
    }

    /// `n` recycled adjacency tables.
    pub(crate) fn take_tables(&mut self, n: usize) -> Vec<AdjTable> {
        (0..n).map(|_| self.take_table()).collect()
    }

    /// Returns a table to the pool, harvesting any leftover frames.
    pub(crate) fn put_table(&mut self, mut table: AdjTable) {
        for (_, frame) in table.drain(..) {
            self.put_frame(frame);
        }
        if self.tables.len() < MAX_POOLED_TABLES {
            self.tables.push(table);
        }
    }

    /// Returns a frame buffer to the pool.
    pub(crate) fn put_frame(&mut self, frame: BitVec) {
        if self.frames.len() < MAX_POOLED_FRAMES {
            self.frames.push(frame);
        }
    }

    /// A zeroed frame buffer of `len` bits, recycled when possible.
    pub(crate) fn take_frame(&mut self, len: usize) -> BitVec {
        match self.frames.pop() {
            Some(mut buf) => {
                buf.reset_zeros(len);
                buf
            }
            None => BitVec::zeros(len),
        }
    }

    /// Drains another arena's pools into this one (up to the caps) — how a
    /// round's [`crate::Traffic`]-local recycling rejoins the network-wide
    /// arena at exchange time.
    pub(crate) fn absorb(&mut self, mut other: FrameArena) {
        while self.tables.len() < MAX_POOLED_TABLES {
            match other.tables.pop() {
                Some(t) => self.tables.push(t),
                None => break,
            }
        }
        while self.frames.len() < MAX_POOLED_FRAMES {
            match other.frames.pop() {
                Some(f) => self.frames.push(f),
                None => break,
            }
        }
        while self.matrices.len() < MAX_POOLED_MATRICES {
            match other.matrices.pop() {
                Some(m) => self.matrices.push(m),
                None => break,
            }
        }
    }

    /// Harvests a dense matrix's frames into the frame pool and keeps the
    /// (now all-`None`) matrix buffer itself for the next densified round.
    pub(crate) fn put_matrix(&mut self, mut matrix: Vec<Option<BitVec>>) {
        for slot in matrix.iter_mut() {
            if let Some(frame) = slot.take() {
                self.put_frame(frame);
            }
        }
        if self.matrices.len() < MAX_POOLED_MATRICES {
            self.matrices.push(matrix);
        }
    }

    /// An all-`None` dense matrix of `n²` slots, recycled when a pooled
    /// buffer of the right shape exists.
    pub(crate) fn take_matrix(&mut self, n: usize) -> Vec<Option<BitVec>> {
        match self.matrices.pop() {
            Some(m) if m.len() == n * n => m,
            _ => vec![None; n * n],
        }
    }

    /// Moves one pooled matrix buffer into `other` (a round-local arena), so
    /// an auto-densify inside the round can reuse it. Unused, it rejoins
    /// this arena through [`FrameArena::absorb`] at exchange time.
    pub(crate) fn lend_matrix(&mut self, other: &mut FrameArena) {
        if let Some(m) = self.matrices.pop() {
            other.matrices.push(m);
        }
    }

    /// Pool occupancy `(tables, frames)` — an observable for tests
    /// asserting that reclamation actually recycles.
    #[cfg(test)]
    pub(crate) fn pooled(&self) -> (usize, usize) {
        (self.tables.len(), self.frames.len())
    }

    /// Pooled dense-matrix buffer count — test observable.
    #[cfg(test)]
    pub(crate) fn pooled_matrices(&self) -> usize {
        self.matrices.len()
    }
}

/// The frame matrix of one round, in either representation.
#[derive(Debug, Clone)]
pub(crate) enum FrameStore {
    /// Row-major `frames[from · n + to]`.
    Dense(Vec<Option<BitVec>>),
    /// `rows[from]` sorted by `to`.
    Sparse(Vec<AdjTable>),
}

impl FrameStore {
    pub(crate) fn new_dense(n: usize) -> Self {
        FrameStore::Dense(vec![None; n * n])
    }

    pub(crate) fn new_sparse(n: usize) -> Self {
        FrameStore::Sparse(vec![AdjTable::new(); n])
    }

    /// A sparse store whose row tables come from the arena.
    pub(crate) fn new_sparse_in(n: usize, arena: &mut FrameArena) -> Self {
        FrameStore::Sparse(arena.take_tables(n))
    }

    pub(crate) fn backend(&self) -> Backend {
        match self {
            FrameStore::Dense(_) => Backend::Dense,
            FrameStore::Sparse(_) => Backend::Sparse,
        }
    }

    pub(crate) fn get(&self, n: usize, from: usize, to: usize) -> Option<&BitVec> {
        match self {
            FrameStore::Dense(frames) => frames[from * n + to].as_ref(),
            FrameStore::Sparse(rows) => {
                let row = &rows[from];
                row.binary_search_by_key(&(to as u32), |&(t, _)| t)
                    .ok()
                    .map(|i| &row[i].1)
            }
        }
    }

    /// Replaces the slot `from → to`, returning the displaced frame.
    pub(crate) fn replace(
        &mut self,
        n: usize,
        from: usize,
        to: usize,
        bits: Option<BitVec>,
    ) -> Option<BitVec> {
        match self {
            FrameStore::Dense(frames) => std::mem::replace(&mut frames[from * n + to], bits),
            FrameStore::Sparse(rows) => {
                let row = &mut rows[from];
                let key = to as u32;
                // Fast path: protocol send loops walk targets in ascending
                // id order, so the overwhelmingly common insert is a tail
                // append.
                if row.last().is_none_or(|&(t, _)| t < key) {
                    if let Some(b) = bits {
                        row.push((key, b));
                    }
                    return None;
                }
                match row.binary_search_by_key(&key, |&(t, _)| t) {
                    Ok(i) => match bits {
                        Some(b) => Some(std::mem::replace(&mut row[i].1, b)),
                        None => Some(row.remove(i).1),
                    },
                    Err(i) => {
                        if let Some(b) = bits {
                            row.insert(i, (key, b));
                        }
                        None
                    }
                }
            }
        }
    }

    /// Visits every frame in ascending `(from, to)` order.
    pub(crate) fn for_each(&self, n: usize, mut f: impl FnMut(usize, usize, &BitVec)) {
        match self {
            FrameStore::Dense(frames) => {
                for (i, slot) in frames.iter().enumerate() {
                    if let Some(b) = slot {
                        f(i / n, i % n, b);
                    }
                }
            }
            FrameStore::Sparse(rows) => {
                for (from, row) in rows.iter().enumerate() {
                    for (to, b) in row {
                        f(from, *to as usize, b);
                    }
                }
            }
        }
    }

    /// Converts sparse rows into the dense matrix (the auto-switch path).
    /// The spent row tables go back to the arena when one is supplied, and
    /// the matrix buffer is drawn from the arena's matrix pool.
    pub(crate) fn densify(&mut self, n: usize, mut arena: Option<&mut FrameArena>) {
        if let FrameStore::Sparse(rows) = self {
            let mut frames = match arena.as_deref_mut() {
                Some(a) => a.take_matrix(n),
                None => vec![None; n * n],
            };
            for (from, row) in rows.iter_mut().enumerate() {
                for (to, b) in row.drain(..) {
                    frames[from * n + to as usize] = Some(b);
                }
            }
            if let Some(a) = arena {
                for row in rows.drain(..) {
                    a.put_table(row);
                }
            }
            *self = FrameStore::Dense(frames);
        }
    }

    /// Serializes the store: representation tag, `n`, then the present
    /// frames in ascending `(from, to)` order. The tag makes restore
    /// representation-exact — a dense store comes back dense — so a
    /// re-encode of the decoded store is byte-identical.
    pub(crate) fn snapshot(&self, n: usize, enc: &mut Enc) {
        enc.put_usize(n);
        match self {
            FrameStore::Dense(_) => enc.put_u8(0),
            FrameStore::Sparse(_) => enc.put_u8(1),
        }
        let mut count = 0usize;
        self.for_each(n, |_, _, _| count += 1);
        enc.put_usize(count);
        self.for_each(n, |from, to, bits| {
            enc.put_u32(from as u32);
            enc.put_u32(to as u32);
            enc.put_bits(bits);
        });
    }

    /// Rebuilds a store serialized by [`FrameStore::snapshot`], returning
    /// `(store, n)`.
    ///
    /// `n` is validated *before* the slot table is allocated: a corrupted
    /// varint must produce a decode error, not an arithmetic-overflow panic
    /// or a multi-gigabyte allocation. The ceilings sit far above any
    /// supported simulation (the dense bound alone admits `n = 16384`, the
    /// largest deployment the bench grids reach).
    pub(crate) fn restore(dec: &mut Dec<'_>) -> Result<(Self, usize), SnapError> {
        /// Most nodes a snapshot may declare, any backend.
        const MAX_NODES: usize = 1 << 17;
        /// Most up-front `n²` slots a dense table may declare.
        const MAX_DENSE_SLOTS: usize = 1 << 28;
        let n = dec.get_usize()?;
        if n == 0 || n > MAX_NODES {
            return Err(SnapError::corrupt(format!(
                "frame store n = {n} out of range"
            )));
        }
        let tag = dec.get_u8()?;
        let mut store = match tag {
            0 => {
                let slots = n
                    .checked_mul(n)
                    .filter(|&s| s <= MAX_DENSE_SLOTS)
                    .ok_or_else(|| SnapError::corrupt(format!("dense store n = {n} too large")))?;
                FrameStore::Dense(vec![None; slots])
            }
            1 => FrameStore::new_sparse(n),
            t => return Err(SnapError::corrupt(format!("frame store tag {t}"))),
        };
        let count = dec.get_len(9)?;
        let mut last: Option<(usize, usize)> = None;
        for _ in 0..count {
            let from = dec.get_u32()? as usize;
            let to = dec.get_u32()? as usize;
            if from >= n || to >= n {
                return Err(SnapError::corrupt(format!(
                    "frame ({from}, {to}) out of range for n = {n}"
                )));
            }
            if last.is_some_and(|prev| prev >= (from, to)) {
                return Err(SnapError::corrupt("frames out of order"));
            }
            last = Some((from, to));
            let bits = dec.get_bits()?;
            store.replace(n, from, to, Some(bits));
        }
        Ok((store, n))
    }

    /// Approximate heap bytes held by the store (matrix slots / adjacency
    /// entries plus frame blocks) — the quantity the storage-layer bench
    /// compares across backends.
    pub(crate) fn heap_bytes(&self) -> usize {
        let frame_bytes = |b: &BitVec| std::mem::size_of::<BitVec>() + b.len().div_ceil(64) * 8;
        match self {
            FrameStore::Dense(frames) => {
                frames.capacity() * std::mem::size_of::<Option<BitVec>>()
                    + frames
                        .iter()
                        .flatten()
                        .map(|b| b.len().div_ceil(64) * 8)
                        .sum::<usize>()
            }
            FrameStore::Sparse(rows) => {
                rows.capacity() * std::mem::size_of::<AdjTable>()
                    + rows
                        .iter()
                        .map(|row| {
                            row.capacity() * std::mem::size_of::<(u32, BitVec)>()
                                + row
                                    .iter()
                                    .map(|(_, b)| frame_bytes(b) - std::mem::size_of::<BitVec>())
                                    .sum::<usize>()
                        })
                        .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[bool]) -> BitVec {
        BitVec::from_bools(bits)
    }

    #[test]
    fn sparse_and_dense_agree_on_replace_get() {
        let n = 5;
        let mut dense = FrameStore::new_dense(n);
        let mut sparse = FrameStore::new_sparse(n);
        let ops: &[(usize, usize, Option<&[bool]>)] = &[
            (0, 3, Some(&[true, false])),
            (0, 1, Some(&[true])),
            (0, 3, Some(&[false])), // overwrite
            (4, 2, Some(&[true, true])),
            (0, 1, None), // clear
            (2, 0, None), // clear empty slot
        ];
        for &(f, t, bits) in ops {
            let b = bits.map(bv);
            let da = dense.replace(n, f, t, b.clone());
            let sa = sparse.replace(n, f, t, b);
            assert_eq!(da, sa, "displaced frames differ at ({f},{t})");
        }
        for f in 0..n {
            for t in 0..n {
                assert_eq!(dense.get(n, f, t), sparse.get(n, f, t), "slot ({f},{t})");
            }
        }
    }

    #[test]
    fn for_each_is_ascending_and_identical_across_backends() {
        let n = 4;
        let mut dense = FrameStore::new_dense(n);
        let mut sparse = FrameStore::new_sparse(n);
        for &(f, t) in &[(3usize, 0usize), (1, 2), (0, 3), (1, 0)] {
            let b = bv(&[f % 2 == 0, t % 2 == 0]);
            dense.replace(n, f, t, Some(b.clone()));
            sparse.replace(n, f, t, Some(b));
        }
        let collect = |s: &FrameStore| {
            let mut v = Vec::new();
            s.for_each(n, |f, t, b| v.push((f, t, b.clone())));
            v
        };
        let d = collect(&dense);
        let s = collect(&sparse);
        assert_eq!(d, s);
        let mut sorted = d.clone();
        sorted.sort_by_key(|&(f, t, _)| (f, t));
        assert_eq!(d, sorted, "iteration must be ascending (from, to)");
    }

    #[test]
    fn densify_preserves_contents_and_recycles_tables() {
        let n = 4;
        let mut arena = FrameArena::default();
        let mut store = FrameStore::new_sparse_in(n, &mut arena);
        store.replace(n, 1, 2, Some(bv(&[true])));
        store.replace(n, 3, 0, Some(bv(&[false, true])));
        store.densify(n, Some(&mut arena));
        assert_eq!(store.backend(), Backend::Dense);
        assert_eq!(store.get(n, 1, 2), Some(&bv(&[true])));
        assert_eq!(store.get(n, 3, 0), Some(&bv(&[false, true])));
        assert_eq!(store.get(n, 0, 1), None);
        let (tables, _) = arena.pooled();
        assert_eq!(tables, n, "spent rows must return to the arena");
    }

    #[test]
    fn arena_recycles_frames_from_tables_and_matrices() {
        let mut arena = FrameArena::default();
        arena.put_table(vec![(7, bv(&[true, true, true]))]);
        let (tables, frames) = arena.pooled();
        assert_eq!((tables, frames), (1, 1));
        // The pooled frame comes back zeroed at the requested length.
        let buf = arena.take_frame(2);
        assert_eq!(buf, BitVec::zeros(2));
        // A dense matrix's frames are harvested on reclamation.
        arena.put_matrix(vec![None, Some(bv(&[true])), None, Some(bv(&[false]))]);
        let (_, frames) = arena.pooled();
        assert_eq!(frames, 2);
    }

    #[test]
    fn matrix_buffers_recycle_through_the_arena() {
        let n = 4;
        let mut arena = FrameArena::default();
        // A harvested matrix is retained (frames pooled, slots cleared)…
        arena.put_matrix(vec![None, Some(bv(&[true])), None, Some(bv(&[false]))]);
        assert_eq!(arena.pooled_matrices(), 1);
        assert_eq!(arena.pooled().1, 2, "matrix frames must be harvested");
        // …but only a shape-matching buffer is reissued.
        let wrong_shape = arena.take_matrix(n);
        assert_eq!(wrong_shape.len(), n * n);
        assert!(wrong_shape.iter().all(Option::is_none));
        assert_eq!(arena.pooled_matrices(), 0);
        arena.put_matrix(wrong_shape);
        let reused = arena.take_matrix(n);
        assert_eq!(reused.len(), n * n);
        assert!(
            reused.iter().all(Option::is_none),
            "reissued buffers are clean"
        );
        // Densify draws its matrix from the arena instead of allocating.
        arena.put_matrix(reused);
        let mut store = FrameStore::new_sparse(n);
        store.replace(n, 1, 2, Some(bv(&[true])));
        store.densify(n, Some(&mut arena));
        assert_eq!(store.backend(), Backend::Dense);
        assert_eq!(
            arena.pooled_matrices(),
            0,
            "densify consumed the pooled buffer"
        );
        assert_eq!(store.get(n, 1, 2), Some(&bv(&[true])));
    }

    #[test]
    fn sparse_heap_bytes_tracks_occupancy_not_n_squared() {
        let n = 64;
        let mut sparse = FrameStore::new_sparse(n);
        let mut dense = FrameStore::new_dense(n);
        for f in 0..n {
            sparse.replace(n, f, (f + 1) % n, Some(bv(&[true])));
            dense.replace(n, f, (f + 1) % n, Some(bv(&[true])));
        }
        assert!(
            sparse.heap_bytes() * 10 < dense.heap_bytes(),
            "sparse {} vs dense {}",
            sparse.heap_bytes(),
            dense.heap_bytes()
        );
    }
}
