//! The Fischer–Parter PODC 2025 compilers: resilient all-to-all
//! communication in the Congested Clique against mobile bounded-degree
//! Byzantine edge adversaries.
//!
//! This crate implements the paper's primary contributions on top of the
//! workspace substrates:
//!
//! * [`routing`] — the resilient super-message routing scheme
//!   (Theorem 4.1 / 1.1), with both the cover-free parallel engine of
//!   Section 4.2 and a scheduled unit-instance engine;
//! * [`broadcast::broadcast`] — Corollary 4.8;
//! * [`protocols`] — the four `AllToAllComm` protocols of Table 1
//!   (Theorems 1.2–1.5), plus baselines.

// Dense linear-algebra and protocol code walks several same-length arrays
// by explicit index; clippy's iterator rewrites would obscure the paper's
// formulas, so this style lint is opted out crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod broadcast;
pub mod cc;
pub mod compiler;
pub mod driver;
mod error;
pub mod exec;
mod problem;
pub mod protocols;
pub mod reduction;
pub mod routing;

pub use driver::{Driver, RoundBudget, RoundDelta, RoundObserver, RoundTrace, ScheduleSwitch};
pub use error::CoreError;
pub use problem::{AllToAllInstance, AllToAllOutput};
pub use protocols::{restore_run, snapshot_run};
