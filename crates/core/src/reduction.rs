//! The subnetwork reduction of Lemma 2.8: solving `AllToAllComm` on
//! `n'`-subcliques (`n/2 ≤ n' ≤ n`) covers the `n`-clique at the cost of
//! halving α.
//!
//! The paper uses this to justify divisibility assumptions (n a power of
//! two, √n an integer, …). The protocols in this crate instead validate
//! their shape requirements directly, but the combinatorial core of the
//! lemma — a family of ten `n'`-subsets covering every node pair — is
//! implemented and tested here, both for fidelity and for downstream users
//! who want to run the protocols on awkward `n`.

use crate::error::CoreError;

/// Builds the paper's pair-covering family: ten subsets `V_1..V_10 ⊆ [n]`
/// of size exactly `n'` such that every pair `{u, v}` is contained in at
/// least one subset.
///
/// Construction (Lemma 2.8's proof): split `[n]` into five consecutive
/// blocks `S_1..S_5`; for each of the `C(5,2) = 10` block pairs `(j, k)`
/// take `S_j ∪ S_k` padded with arbitrary outside nodes up to `n'`.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] unless `n/2 ≤ n' ≤ n` and `n ≥ 5` (five
/// non-empty blocks need five nodes).
pub fn pair_cover(n: usize, n_prime: usize) -> Result<Vec<Vec<usize>>, CoreError> {
    if n < 5 {
        return Err(CoreError::invalid("pair cover needs n >= 5"));
    }
    if n_prime > n || 2 * n_prime < n {
        return Err(CoreError::invalid(format!(
            "need n/2 <= n' <= n, got n = {n}, n' = {n_prime}"
        )));
    }
    // Five consecutive blocks of size ⌊n/5⌋ (last takes the remainder).
    let base = n / 5;
    let blocks: Vec<Vec<usize>> = (0..5)
        .map(|j| {
            let start = j * base;
            let end = if j == 4 { n } else { (j + 1) * base };
            (start..end).collect()
        })
        .collect();
    // Any two blocks together hold ≤ 2(⌈n/5⌉ + 4) ≤ n' for n ≥ 5 after the
    // validation above; check anyway so pathological splits fail loudly.
    for j in 0..5 {
        for k in (j + 1)..5 {
            if blocks[j].len() + blocks[k].len() > n_prime {
                return Err(CoreError::invalid(format!(
                    "blocks {j},{k} exceed n' = {n_prime}; choose larger n'"
                )));
            }
        }
    }
    let mut cover = Vec::with_capacity(10);
    for j in 0..5 {
        for k in (j + 1)..5 {
            let mut set: Vec<usize> = blocks[j].iter().chain(blocks[k].iter()).copied().collect();
            // Pad with nodes outside S_j ∪ S_k.
            let mut in_set = vec![false; n];
            for &x in &set {
                in_set[x] = true;
            }
            let mut filler = (0..n).filter(|&x| !in_set[x]);
            while set.len() < n_prime {
                set.push(filler.next().expect("enough outside nodes"));
            }
            set.sort_unstable();
            cover.push(set);
        }
    }
    Ok(cover)
}

/// Checks that a family covers every pair of `[n]` (the lemma's guarantee);
/// exposed for tests and for validating custom covers.
pub fn covers_all_pairs(n: usize, family: &[Vec<usize>]) -> bool {
    for u in 0..n {
        for v in (u + 1)..n {
            let hit = family
                .iter()
                .any(|set| set.binary_search(&u).is_ok() && set.binary_search(&v).is_ok());
            if !hit {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_sets_of_exact_size() {
        let cover = pair_cover(20, 12).unwrap();
        assert_eq!(cover.len(), 10);
        assert!(cover.iter().all(|s| s.len() == 12));
    }

    #[test]
    fn covers_every_pair_various_shapes() {
        for (n, n_prime) in [(20, 12), (23, 16), (40, 20), (17, 10), (100, 64)] {
            let cover = pair_cover(n, n_prime).unwrap_or_else(|e| {
                panic!("cover({n}, {n_prime}) failed: {e}");
            });
            assert!(
                covers_all_pairs(n, &cover),
                "cover({n}, {n_prime}) misses a pair"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_n_prime() {
        assert!(pair_cover(20, 21).is_err());
        assert!(pair_cover(20, 9).is_err());
        assert!(pair_cover(4, 4).is_err());
    }

    #[test]
    fn detects_non_covering_family() {
        // {0..9} and {10..19} miss the pair (0, 10).
        let fam = vec![(0..10).collect::<Vec<_>>(), (10..20).collect()];
        assert!(!covers_all_pairs(20, &fam));
    }

    #[test]
    fn sets_are_sorted_subsets_of_range() {
        let cover = pair_cover(23, 16).unwrap();
        for set in &cover {
            assert!(set.windows(2).all(|w| w[0] < w[1]));
            assert!(set.iter().all(|&x| x < 23));
        }
    }
}
