//! Repetition code: the trivial baseline for the `A.CODE` ablation.

use crate::error::CodeError;
use crate::traits::SymbolCode;

/// An `r`-fold repetition code over `symbol_bits`-bit symbols.
///
/// Each message symbol is repeated `r` times consecutively; decoding takes a
/// plurality vote over non-erased copies. Rate `1/r`, distance `r` — the
/// baseline every structured code should beat in the benchmarks.
///
/// # Examples
///
/// ```
/// use bdclique_codes::{RepetitionCode, SymbolCode};
///
/// let code = RepetitionCode::new(8, 2, 3).unwrap();
/// let mut cw = code.encode(&[7, 9]).unwrap();
/// cw[0] = 99; // one corrupted copy of symbol 0
/// assert_eq!(code.decode(&cw, &[false; 6]).unwrap(), vec![7, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepetitionCode {
    symbol_bits: u32,
    message_len: usize,
    r: usize,
}

impl RepetitionCode {
    /// Builds an `r`-fold repetition code for `message_len` symbols of
    /// `symbol_bits` bits.
    ///
    /// # Errors
    ///
    /// Rejects `r == 0`, `message_len == 0`, or symbol widths outside
    /// `1..=16`.
    pub fn new(symbol_bits: u32, message_len: usize, r: usize) -> Result<Self, CodeError> {
        if r == 0 || message_len == 0 {
            return Err(CodeError::LengthMismatch {
                expected: 1,
                actual: 0,
            });
        }
        if symbol_bits == 0 || symbol_bits > 16 {
            return Err(CodeError::SymbolOutOfRange {
                value: symbol_bits as u16,
                alphabet: 16,
            });
        }
        Ok(Self {
            symbol_bits,
            message_len,
            r,
        })
    }

    /// The repetition factor.
    pub fn repetitions(&self) -> usize {
        self.r
    }
}

impl SymbolCode for RepetitionCode {
    fn message_len(&self) -> usize {
        self.message_len
    }

    fn codeword_len(&self) -> usize {
        self.message_len * self.r
    }

    fn symbol_bits(&self) -> u32 {
        self.symbol_bits
    }

    fn distance(&self) -> usize {
        self.r
    }

    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
        if msg.len() != self.message_len {
            return Err(CodeError::LengthMismatch {
                expected: self.message_len,
                actual: msg.len(),
            });
        }
        let alphabet = 1u32 << self.symbol_bits;
        let mut out = Vec::with_capacity(self.codeword_len());
        for &s in msg {
            if s as u32 >= alphabet {
                return Err(CodeError::SymbolOutOfRange { value: s, alphabet });
            }
            out.extend(std::iter::repeat_n(s, self.r));
        }
        Ok(out)
    }

    fn decode(&self, received: &[u16], erasures: &[bool]) -> Result<Vec<u16>, CodeError> {
        if received.len() != self.codeword_len() || erasures.len() != self.codeword_len() {
            return Err(CodeError::LengthMismatch {
                expected: self.codeword_len(),
                actual: received.len().min(erasures.len()),
            });
        }
        let mut out = Vec::with_capacity(self.message_len);
        for sym in 0..self.message_len {
            let base = sym * self.r;
            let mut votes: Vec<(u16, usize)> = Vec::new();
            for copy in 0..self.r {
                if erasures[base + copy] {
                    continue;
                }
                let v = received[base + copy];
                match votes.iter_mut().find(|(val, _)| *val == v) {
                    Some((_, count)) => *count += 1,
                    None => votes.push((v, 1)),
                }
            }
            votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            match votes.as_slice() {
                [] => {
                    return Err(CodeError::TooManyErrors {
                        context: "all copies of a repetition symbol erased",
                    })
                }
                [(v, _)] => out.push(*v),
                [(v1, c1), (_, c2), ..] => {
                    if c1 == c2 {
                        return Err(CodeError::TooManyErrors {
                            context: "repetition plurality tie",
                        });
                    }
                    out.push(*v1);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_clean() {
        let code = RepetitionCode::new(4, 3, 5).unwrap();
        let msg = vec![1, 2, 3];
        let cw = code.encode(&msg).unwrap();
        assert_eq!(cw.len(), 15);
        assert_eq!(code.decode(&cw, &[false; 15]).unwrap(), msg);
    }

    #[test]
    fn majority_beats_minority_corruption() {
        let code = RepetitionCode::new(8, 1, 5).unwrap();
        let mut cw = code.encode(&[42]).unwrap();
        cw[0] = 1;
        cw[1] = 2; // two distinct corruptions lose to three honest copies
        assert_eq!(code.decode(&cw, &[false; 5]).unwrap(), vec![42]);
    }

    #[test]
    fn tie_is_an_error() {
        let code = RepetitionCode::new(8, 1, 4).unwrap();
        let mut cw = code.encode(&[42]).unwrap();
        cw[0] = 7;
        cw[1] = 7; // 2 vs 2 tie
        assert!(matches!(
            code.decode(&cw, &[false; 4]),
            Err(CodeError::TooManyErrors { .. })
        ));
    }

    #[test]
    fn erasures_do_not_vote() {
        let code = RepetitionCode::new(8, 1, 3).unwrap();
        let mut cw = code.encode(&[9]).unwrap();
        cw[0] = 1;
        cw[1] = 1; // two bad copies…
        let mut eras = vec![false; 3];
        eras[0] = true;
        eras[1] = true; // …but both erased
        assert_eq!(code.decode(&cw, &eras).unwrap(), vec![9]);
    }

    #[test]
    fn all_erased_fails() {
        let code = RepetitionCode::new(8, 1, 2).unwrap();
        let cw = code.encode(&[3]).unwrap();
        assert!(code.decode(&cw, &[true, true]).is_err());
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(RepetitionCode::new(8, 0, 3).is_err());
        assert!(RepetitionCode::new(8, 3, 0).is_err());
        assert!(RepetitionCode::new(0, 3, 3).is_err());
        assert!(RepetitionCode::new(17, 3, 3).is_err());
    }
}
